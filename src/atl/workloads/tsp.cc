#include "atl/workloads/tsp.hh"

#include <cmath>
#include <sstream>

#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

std::string
TspWorkload::description() const
{
    return "branch-and-bound traveling salesman: the solution space is "
           "repeatedly divided into two subspaces represented as "
           "adjacency matrices; parents initialise children's matrices";
}

std::string
TspWorkload::parameters() const
{
    std::ostringstream os;
    os << "finds a suboptimal path for the traveling salesman problem "
          "for "
       << _params.cities << " cities; measured the execution of "
       << ((2ull << _params.depth) - 1) << " threads";
    return os.str();
}

void
TspWorkload::setup(WorkloadEnv &env)
{
    _machine = &env.machine;
    _tracer = env.tracer;
    _batchRefs = env.batchRefs;
    Machine &m = *_machine;

    unsigned n = _params.cities;
    atl_assert(n >= 4, "tsp needs at least four cities");
    _matrixBytes = static_cast<uint64_t>(n) * n * sizeof(uint32_t);

    // City coordinates -> symmetric integer distance matrix.
    Rng rng(_params.seed);
    std::vector<std::pair<double, double>> coords(n);
    for (auto &c : coords)
        c = {rng.uniform() * 1000.0, rng.uniform() * 1000.0};
    _distance.assign(static_cast<size_t>(n) * n, 0);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            double dx = coords[i].first - coords[j].first;
            double dy = coords[i].second - coords[j].second;
            _distance[static_cast<size_t>(i) * n + j] =
                static_cast<uint32_t>(std::sqrt(dx * dx + dy * dy)) + 1;
        }
    }

    _bestLock = std::make_unique<Mutex>(m);
    _bestVa = m.alloc(64, 64);

    // Root subspace holds the unconstrained distance matrix.
    auto root = std::make_shared<Subspace>();
    root->matrixVa = m.alloc(_matrixBytes, 64);
    root->matrix = _distance;

    ThreadId root_tid = m.spawn(
        [this, root] {
            // The root initialises its matrix (modelled writes), then
            // explores like any other node.
            _machine->write(root->matrixVa, _matrixBytes);
            explore(root, 1, 0);
        },
        "tsp-root");
    ++_threadsCreated;
    if (_tracer)
        _tracer->registerState(root_tid, root->matrixVa, _matrixBytes);
}

std::shared_ptr<TspWorkload::Subspace>
TspWorkload::split(Subspace &parent, uint64_t child_node)
{
    Machine &m = *_machine;
    unsigned n = _params.cities;

    auto child = std::make_shared<Subspace>();
    child->matrixVa = m.alloc(_matrixBytes, 64);
    child->matrix = parent.matrix;

    // The matrix the parent is about to initialise is part of the
    // parent's accessed state from this moment (the child also
    // registers it when spawned).
    if (_tracer)
        _tracer->registerState(m.self(), child->matrixVa, _matrixBytes);

    // Branching constraint: the left child forbids one deterministic
    // edge of the parent's subspace, the right child inflates its cost
    // (penalising without forbidding keeps every subspace feasible so
    // all policies do identical work).
    unsigned i = static_cast<unsigned>(child_node % n);
    unsigned j = static_cast<unsigned>((child_node / n + 1) % n);
    if (i != j) {
        uint32_t penalty = (child_node & 1) ? 4000 : 2000;
        child->matrix[static_cast<size_t>(i) * n + j] += penalty;
        child->matrix[static_cast<size_t>(j) * n + i] += penalty;
    }

    // The parent copies the matrix row by row: modelled reads of its own
    // subspace, modelled writes into the child's (this is the prefetch
    // the annotations describe).
    uint64_t row_bytes = static_cast<uint64_t>(n) * sizeof(uint32_t);
    RefBatch batch(m, _batchRefs);
    for (unsigned r = 0; r < n; ++r) {
        batch.read(parent.matrixVa + r * row_bytes, row_bytes);
        batch.write(child->matrixVa + r * row_bytes, row_bytes);
    }
    return child;
}

uint64_t
TspWorkload::greedyTour(Subspace &space, std::vector<unsigned> &tour)
{
    Machine &m = *_machine;
    unsigned n = _params.cities;
    uint64_t row_bytes = static_cast<uint64_t>(n) * sizeof(uint32_t);

    std::vector<bool> visited(n, false);
    tour.clear();
    tour.reserve(n);
    unsigned current = 0;
    visited[0] = true;
    tour.push_back(0);
    uint64_t length = 0;

    RefBatch batch(m, _batchRefs);
    for (unsigned step = 1; step < n; ++step) {
        // Modelled read of the current city's distance row.
        batch.read(space.matrixVa +
                       static_cast<uint64_t>(current) * row_bytes,
                   row_bytes);
        unsigned best = n;
        uint32_t best_d = ~0u;
        for (unsigned c = 0; c < n; ++c) {
            if (visited[c])
                continue;
            uint32_t d = space.matrix[static_cast<size_t>(current) * n + c];
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        atl_assert(best < n, "greedy tour found no next city");
        visited[best] = true;
        tour.push_back(best);
        // Length is measured on the *true* distances: penalties only
        // steer which subspace finds which tour.
        length += _distance[static_cast<size_t>(current) * n + best];
        current = best;
    }
    length += _distance[static_cast<size_t>(current) * n + 0];
    return length;
}

void
TspWorkload::explore(std::shared_ptr<Subspace> space, uint64_t node,
                     unsigned level)
{
    Machine &m = *_machine;

    if (node == _monitorNode && _nodeStartHook)
        _nodeStartHook();

    if (level == _params.depth) {
        // Leaf: complete the tour greedily and publish if better.
        std::vector<unsigned> tour;
        uint64_t length = greedyTour(*space, tour);

        _bestLock->lock();
        m.read(_bestVa, 8);
        if (length < _bestLength) {
            _bestLength = length;
            _bestTour = tour;
            m.write(_bestVa, 8);
        }
        _bestLock->unlock();
        return;
    }

    // Internal node: derive both children (prefetching their matrices),
    // then spawn and join them.
    auto left = split(*space, node * 2);
    auto right = split(*space, node * 2 + 1);

    ThreadId tid_l = m.spawn(
        [this, left, node, level] { explore(left, node * 2, level + 1); });
    ThreadId tid_r = m.spawn([this, right, node, level] {
        explore(right, node * 2 + 1, level + 1);
    });
    _threadsCreated += 2;

    if (_tracer) {
        _tracer->registerState(tid_l, left->matrixVa, _matrixBytes);
        _tracer->registerState(tid_r, right->matrixVa, _matrixBytes);
    }
    if (_params.annotate) {
        // One third of this thread's state (own matrix + two children's)
        // is each child's entire state.
        m.share(m.self(), tid_l, 1.0 / 3.0);
        m.share(m.self(), tid_r, 1.0 / 3.0);
        // And everything a child touches lies inside the parent's state.
        m.share(tid_l, m.self(), 1.0);
        m.share(tid_r, m.self(), 1.0);
    }

    m.join(tid_l);
    m.join(tid_r);
}

bool
TspWorkload::verify() const
{
    if (_threadsCreated != (2ull << _params.depth) - 1)
        return false;
    if (_bestTour.size() != _params.cities)
        return false;

    // Valid permutation?
    std::vector<bool> seen(_params.cities, false);
    for (unsigned city : _bestTour) {
        if (city >= _params.cities || seen[city])
            return false;
        seen[city] = true;
    }

    // Recorded length matches the true distances?
    uint64_t length = 0;
    unsigned n = _params.cities;
    for (size_t i = 0; i < _bestTour.size(); ++i) {
        unsigned from = _bestTour[i];
        unsigned to = _bestTour[(i + 1) % _bestTour.size()];
        length += _distance[static_cast<size_t>(from) * n + to];
    }
    return length == _bestLength;
}

} // namespace atl
