/**
 * @file
 * A ray-tracing style kernel: the synthetic analogue of SPLASH-2
 * `raytrace`, one of the two applications for which the paper's model
 * substantially over-predicts footprints (Figure 7): "in between short
 * bursts, the majority of misses are conflict misses that do not
 * significantly increase the footprint."
 *
 * Coherent ray bundles walk a uniform spatial grid and, for every
 * visited cell, chase the cell's object list into a triangle region.
 * The cell and triangle regions are cache-sized and allocated
 * back-to-back, so under any page placement the cell line and the
 * triangle line it references fall into the same direct-mapped set and
 * evict each other on every revisit — persistent conflict misses over a
 * bounded working set, exactly the anomaly the paper reports.
 */

#ifndef ATL_WORKLOADS_RAYTRACE_HH
#define ATL_WORKLOADS_RAYTRACE_HH

#include "atl/workloads/workload.hh"

namespace atl
{

/** Grid-walking renderer with conflict-heavy indirections. */
class RaytraceWorkload : public MonitoredWorkload
{
  public:
    struct Params
    {
        /** Rays to shoot (4 consecutive rays form a coherent bundle). */
        uint64_t rays = 6000;
        /** Grid cells visited per ray. */
        unsigned steps = 32;
        /** Distinct hot lines the scene working set cycles through. */
        uint64_t hotLines = 2048;
        /** RNG seed. */
        uint64_t seed = 43;
    };

    explicit RaytraceWorkload(Params params) : _params(params) {}

    std::string name() const override { return "raytrace"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return false; }

  private:
    Params _params;
    uint64_t _cellsVisited = 0;
};

} // namespace atl

#endif // ATL_WORKLOADS_RAYTRACE_HH
