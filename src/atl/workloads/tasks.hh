/**
 * @file
 * The `tasks` benchmark (paper Sections 5, Table 4), originally used by
 * Squillante & Lazowska to evaluate processor-cache affinity: a fixed
 * number of identical threads with equal-sized but *disjoint* footprints
 * repeatedly wake up, touch their state, and block for the same duration
 * they were active. Because states are disjoint, at_share() annotations
 * are not relevant; all locality information comes from the performance
 * counters alone.
 */

#ifndef ATL_WORKLOADS_TASKS_HH
#define ATL_WORKLOADS_TASKS_HH

#include <atomic>

#include "atl/workloads/workload.hh"

namespace atl
{

/** The wake-touch-sleep affinity benchmark. */
class TasksWorkload : public Workload
{
  public:
    struct Params
    {
        /** Number of identical tasks (paper: 1024). */
        unsigned numTasks = 1024;
        /** Footprint of each task in E-cache lines (paper: 100). */
        uint64_t linesPerTask = 100;
        /** Scheduling periods per task (paper: 100). */
        unsigned periods = 100;
    };

    explicit TasksWorkload(Params params) : _params(params) {}

    std::string name() const override { return "tasks"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return false; }

  private:
    Params _params;
    std::atomic<uint64_t> _periodsDone{0}; ///< bumped by fibers on any host worker
};

} // namespace atl

#endif // ATL_WORKLOADS_TASKS_HH
