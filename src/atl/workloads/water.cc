#include "atl/workloads/water.hh"

#include <sstream>

#include "atl/runtime/sync.hh"
#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

namespace
{

/** Modelled bytes per molecule record. */
constexpr uint64_t moleculeBytes = 64;

} // namespace

std::string
WaterWorkload::description() const
{
    return "evaluates forces and potentials in a system of water "
           "molecules using cell lists over pairwise interactions";
}

std::string
WaterWorkload::parameters() const
{
    std::ostringstream os;
    os << _params.molecules << " molecules, " << _params.cellEdge << "^3 "
       << "cells, " << _params.passes << " passes";
    return os.str();
}

void
WaterWorkload::setup(WorkloadEnv &env)
{
    Machine &m = env.machine;
    unsigned edge = _params.cellEdge;
    atl_assert(edge >= 2, "cell box too small");

    VAddr mol_va = m.alloc(_params.molecules * moleculeBytes, 64);

    // Host: place molecules in cells; build per-cell member lists.
    size_t n_cells = static_cast<size_t>(edge) * edge * edge;
    auto cells =
        std::make_shared<std::vector<std::vector<uint32_t>>>(n_cells);
    auto cell_of = std::make_shared<std::vector<uint32_t>>(
        _params.molecules);
    Rng rng(_params.seed);
    for (uint64_t i = 0; i < _params.molecules; ++i) {
        uint32_t cx = static_cast<uint32_t>(rng.below(edge));
        uint32_t cy = static_cast<uint32_t>(rng.below(edge));
        uint32_t cz = static_cast<uint32_t>(rng.below(edge));
        uint32_t cell = cx + edge * (cy + edge * cz);
        (*cells)[cell].push_back(static_cast<uint32_t>(i));
        (*cell_of)[i] = cell;
    }

    auto sync = std::make_shared<Semaphore>(m, 0);

    m.spawn(
        [&m, mol_va, sync, this] {
            m.write(mol_va, _params.molecules * moleculeBytes);
            sync->post();
        },
        "water-init");

    unsigned passes = _params.passes;
    bool batch_refs = env.batchRefs;
    _workTid = m.spawn(
        [this, &m, mol_va, cells, cell_of, sync, edge, passes,
         batch_refs] {
            sync->wait();
            callWorkStart();
            RefBatch batch(m, batch_refs);
            for (unsigned pass = 0; pass < passes; ++pass) {
                for (uint64_t i = 0; i < _params.molecules; ++i) {
                    batch.read(mol_va + i * moleculeBytes, moleculeBytes);
                    uint32_t cell = (*cell_of)[i];
                    uint32_t cx = cell % edge;
                    uint32_t cy = (cell / edge) % edge;
                    uint32_t cz = cell / (edge * edge);
                    // Interact with every molecule in the 3^3 cell
                    // neighbourhood (periodic boundaries).
                    for (int dz = -1; dz <= 1; ++dz) {
                        for (int dy = -1; dy <= 1; ++dy) {
                            for (int dx = -1; dx <= 1; ++dx) {
                                uint32_t nx = (cx + edge + dx) % edge;
                                uint32_t ny = (cy + edge + dy) % edge;
                                uint32_t nz = (cz + edge + dz) % edge;
                                uint32_t nc =
                                    nx + edge * (ny + edge * nz);
                                for (uint32_t j : (*cells)[nc]) {
                                    if (j == i)
                                        continue;
                                    batch.read(mol_va +
                                                   j * moleculeBytes,
                                               moleculeBytes);
                                    ++_interactions;
                                }
                            }
                        }
                    }
                    batch.write(mol_va + i * moleculeBytes, moleculeBytes);
                    ++_moleculesProcessed;
                }
            }
        },
        "water-work");

    env.registerState(_workTid, mol_va, _params.molecules * moleculeBytes);
}

bool
WaterWorkload::verify() const
{
    return _moleculesProcessed ==
               static_cast<uint64_t>(_params.molecules) * _params.passes &&
           _interactions > 0;
}

} // namespace atl
