#include "atl/workloads/mergesort.hh"

#include <algorithm>
#include <sstream>

#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

std::string
MergesortWorkload::description() const
{
    return "parallel mergesort: sublists sorted by child threads, merged "
           "by the parent; child state fully contained in the parent's";
}

std::string
MergesortWorkload::parameters() const
{
    std::ostringstream os;
    os << _params.elements
       << " uniformly distributed elements; switches to insertion sort "
          "for tasks of size "
       << _params.cutoff << " or smaller";
    return os.str();
}

void
MergesortWorkload::setup(WorkloadEnv &env)
{
    _machine = &env.machine;
    _tracer = env.tracer;
    _batchRefs = env.batchRefs;

    _data = std::make_unique<ModelledArray<int32_t>>(*_machine,
                                                     _params.elements);
    _scratch = std::make_unique<ModelledArray<int32_t>>(*_machine,
                                                        _params.elements);

    Rng rng(_params.seed);
    for (size_t i = 0; i < _params.elements; ++i) {
        int32_t v = static_cast<int32_t>(rng.below(1u << 30));
        _data->host()[i] = v;
        _checksum += static_cast<uint32_t>(v);
    }

    size_t n = _params.elements;
    _rootTid = _machine->spawn([this, n] { sortRange(0, n); }, "sort-root");
    ++_threadsCreated;
    if (_tracer) {
        _tracer->registerState(_rootTid, _data->addr(0), n * 4);
        _tracer->registerState(_rootTid, _scratch->addr(0), n * 4);
    }
}

void
MergesortWorkload::sortRange(size_t lo, size_t hi)
{
    if (hi - lo <= _params.cutoff) {
        insertionSort(lo, hi);
        return;
    }

    Machine &m = *_machine;
    size_t mid = lo + (hi - lo) / 2;
    ThreadId tid_l = m.spawn([this, lo, mid] { sortRange(lo, mid); });
    ThreadId tid_r = m.spawn([this, mid, hi] { sortRange(mid, hi); });
    _threadsCreated += 2;

    if (_tracer) {
        _tracer->registerState(tid_l, _data->addr(lo), (mid - lo) * 4);
        _tracer->registerState(tid_l, _scratch->addr(lo), (mid - lo) * 4);
        _tracer->registerState(tid_r, _data->addr(mid), (hi - mid) * 4);
        _tracer->registerState(tid_r, _scratch->addr(mid), (hi - mid) * 4);
    }
    if (_params.annotate) {
        // The paper's mergesort annotations, verbatim: the state of each
        // child is fully contained in the parent's state.
        m.share(tid_l, m.self(), 1.0);
        m.share(tid_r, m.self(), 1.0);
    }

    m.join(tid_l);
    m.join(tid_r);
    if (m.self() == _rootTid && _rootMergeHook)
        _rootMergeHook();
    merge(lo, mid, hi);
}

void
MergesortWorkload::insertionSort(size_t lo, size_t hi)
{
    ModelledArray<int32_t> &d = *_data;
    RefBatch batch(*_machine, _batchRefs);
    for (size_t i = lo + 1; i < hi; ++i) {
        int32_t v = d.get(batch, i);
        size_t j = i;
        while (j > lo && d.get(batch, j - 1) > v) {
            d.set(batch, j, d.host()[j - 1]);
            --j;
        }
        d.set(batch, j, v);
    }
}

void
MergesortWorkload::merge(size_t lo, size_t mid, size_t hi)
{
    ModelledArray<int32_t> &d = *_data;
    ModelledArray<int32_t> &s = *_scratch;

    RefBatch batch(*_machine, _batchRefs);
    size_t i = lo, j = mid, out = lo;
    while (i < mid && j < hi) {
        if (d.get(batch, i) <= d.get(batch, j))
            s.set(batch, out++, d.host()[i++]);
        else
            s.set(batch, out++, d.host()[j++]);
    }
    while (i < mid)
        s.set(batch, out++, d.get(batch, i++));
    while (j < hi)
        s.set(batch, out++, d.get(batch, j++));
    for (size_t k = lo; k < hi; ++k)
        d.set(batch, k, s.get(batch, k));
}

bool
MergesortWorkload::verify() const
{
    const auto &host = _data->host();
    uint64_t checksum = 0;
    for (size_t i = 0; i < host.size(); ++i) {
        if (i > 0 && host[i - 1] > host[i])
            return false;
        checksum += static_cast<uint32_t>(host[i]);
    }
    return checksum == _checksum;
}

} // namespace atl
