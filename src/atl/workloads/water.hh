/**
 * @file
 * A water-molecule dynamics kernel: the synthetic analogue of SPLASH-2
 * `water` for the model-accuracy study (paper Figures 5 and 6). The
 * work thread evaluates pairwise interactions between molecules using
 * cell lists, producing a reference stream of moderate clustering:
 * sequential within a molecule record, scattered across cell
 * neighbourhoods.
 */

#ifndef ATL_WORKLOADS_WATER_HH
#define ATL_WORKLOADS_WATER_HH

#include "atl/workloads/workload.hh"

namespace atl
{

/** Cell-list pairwise interaction kernel. */
class WaterWorkload : public MonitoredWorkload
{
  public:
    struct Params
    {
        /** Number of molecules (64 modelled bytes each). */
        uint64_t molecules = 4096;
        /** Cells per box edge (cells = edge^3). */
        unsigned cellEdge = 8;
        /** Interaction passes. */
        unsigned passes = 2;
        /** RNG seed for molecule positions. */
        uint64_t seed = 41;
    };

    explicit WaterWorkload(Params params) : _params(params) {}

    std::string name() const override { return "water"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return false; }

  private:
    Params _params;
    uint64_t _interactions = 0;
    uint64_t _moleculesProcessed = 0;
};

} // namespace atl

#endif // ATL_WORKLOADS_WATER_HH
