/**
 * @file
 * Parallel mergesort (`merge`, paper Sections 2.3, 3.3 and 5): the input
 * is split recursively into sublists sorted by child threads and merged
 * by the parent; below the cutoff a thread switches to insertion sort.
 * Each child's state (its subrange of the data and scratch arrays) is
 * fully contained in its parent's, expressed with the paper's exact
 * annotations:
 *
 *   at_share(tid_l, at_self(), 1.0);
 *   at_share(tid_r, at_self(), 1.0);
 *
 * The parent prefetches nothing for the children, so the reverse arcs
 * are omitted, and no transitivity is assumed — the annotations capture
 * only first-order (parent/child) effects, as in the paper.
 */

#ifndef ATL_WORKLOADS_MERGESORT_HH
#define ATL_WORKLOADS_MERGESORT_HH

#include <atomic>

#include <cstdint>

#include "atl/workloads/workload.hh"

namespace atl
{

/** Recursive fork/join mergesort over a modelled array. */
class MergesortWorkload : public Workload
{
  public:
    struct Params
    {
        /** Elements to sort (paper: 100,000). */
        size_t elements = 100000;
        /** Switch to insertion sort at or below this size (paper: 100). */
        size_t cutoff = 100;
        /** RNG seed for the input permutation. */
        uint64_t seed = 7;
        /** Emit at_share annotations (ablation switch). */
        bool annotate = true;
    };

    explicit MergesortWorkload(Params params) : _params(params) {}

    std::string name() const override { return "merge"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return _params.annotate; }

    /** Threads created (valid after the run). */
    uint64_t threadsCreated() const { return _threadsCreated; }

    /** Root sorting thread (for footprint monitoring). */
    ThreadId rootTid() const { return _rootTid; }

    /**
     * Hook invoked by the root thread right before its final merge —
     * the root's own large uninterrupted work phase, the natural
     * monitoring point for a Figure 5 style footprint study.
     */
    void
    onRootMerge(std::function<void()> hook)
    {
        _rootMergeHook = std::move(hook);
    }

  private:
    /** Body of one sorting thread over [lo, hi). */
    void sortRange(size_t lo, size_t hi);

    /** Modelled insertion sort of [lo, hi). */
    void insertionSort(size_t lo, size_t hi);

    /** Modelled merge of [lo, mid) and [mid, hi) via the scratch
     *  array. */
    void merge(size_t lo, size_t mid, size_t hi);

    Params _params;
    Machine *_machine = nullptr;
    Tracer *_tracer = nullptr;
    bool _batchRefs = true;
    std::unique_ptr<ModelledArray<int32_t>> _data;
    std::unique_ptr<ModelledArray<int32_t>> _scratch;
    uint64_t _checksum = 0;
    std::atomic<uint64_t> _threadsCreated{0}; ///< bumped by fibers on any host worker
    ThreadId _rootTid = InvalidThreadId;
    std::function<void()> _rootMergeHook;
};

} // namespace atl

#endif // ATL_WORKLOADS_MERGESORT_HH
