#include "atl/workloads/barnes.hh"

#include <algorithm>
#include <sstream>

#include "atl/runtime/sync.hh"
#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

namespace
{

/** Modelled bytes per body (position, velocity, mass, force). */
constexpr uint64_t bodyBytes = 32;

/** Modelled bytes per octree node (centre of mass, bounds, children). */
constexpr uint64_t nodeBytes = 64;

/** Interleave the low 10 bits of three coordinates (Morton code). */
uint32_t
morton3(uint32_t x, uint32_t y, uint32_t z)
{
    auto spread = [](uint32_t v) {
        uint32_t r = 0;
        for (unsigned bit = 0; bit < 10; ++bit)
            r |= ((v >> bit) & 1u) << (3 * bit);
        return r;
    };
    return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

} // namespace

std::string
BarnesWorkload::description() const
{
    return "simulates interaction of bodies in 3D using the hierarchical "
           "octree method (Barnes-Hut); force walks read the node path "
           "from the root for every body";
}

std::string
BarnesWorkload::parameters() const
{
    std::ostringstream os;
    os << _params.bodies << " bodies, octree depth " << _params.treeDepth
       << ", " << _params.passes << " passes";
    return os.str();
}

void
BarnesWorkload::setup(WorkloadEnv &env)
{
    Machine &m = env.machine;

    // Complete octree: sum of 8^l nodes for l = 0..depth.
    uint64_t nodes = 0;
    uint64_t level_size = 1;
    for (unsigned l = 0; l <= _params.treeDepth; ++l) {
        nodes += level_size;
        level_size *= 8;
    }

    VAddr bodies_va = m.alloc(_params.bodies * bodyBytes, 64);
    VAddr nodes_va = m.alloc(nodes * nodeBytes, 64);

    // Host positions on a 1024^3 lattice; bodies are visited in Morton
    // order, giving the spatially clustered reference stream of a real
    // Barnes-Hut force pass.
    struct Body
    {
        uint32_t x, y, z;
        uint32_t morton;
        uint64_t index;
    };
    auto order = std::make_shared<std::vector<Body>>(_params.bodies);
    Rng rng(_params.seed);
    for (uint64_t i = 0; i < _params.bodies; ++i) {
        Body &b = (*order)[i];
        b.x = static_cast<uint32_t>(rng.below(1024));
        b.y = static_cast<uint32_t>(rng.below(1024));
        b.z = static_cast<uint32_t>(rng.below(1024));
        b.morton = morton3(b.x, b.y, b.z);
        b.index = i;
    }
    std::sort(order->begin(), order->end(),
              [](const Body &a, const Body &b) {
                  return a.morton < b.morton;
              });

    auto sync = std::make_shared<Semaphore>(m, 0);

    // Init thread: builds the tree and body arrays (modelled writes),
    // then releases the work thread — the paper's initialization stage.
    m.spawn(
        [&m, bodies_va, nodes_va, nodes, sync, this] {
            m.write(bodies_va, _params.bodies * bodyBytes);
            m.write(nodes_va, nodes * nodeBytes);
            sync->post();
        },
        "barnes-init");

    unsigned depth = _params.treeDepth;
    unsigned passes = _params.passes;
    bool batch_refs = env.batchRefs;
    _workTid = m.spawn(
        [this, &m, bodies_va, nodes_va, order, sync, depth, passes,
         batch_refs] {
            sync->wait();
            callWorkStart();
            RefBatch batch(m, batch_refs);
            for (unsigned pass = 0; pass < passes; ++pass) {
                for (const auto &b : *order) {
                    // Walk root -> leaf, reading each visited node. The
                    // child is selected by the body's octant at each
                    // level, so nearby bodies share node paths.
                    uint64_t node = 0;      // root index within level
                    uint64_t level_base = 0; // first index of the level
                    uint64_t level_size = 1;
                    unsigned shift = 9;
                    for (unsigned l = 0; l <= depth; ++l) {
                        batch.read(nodes_va +
                                       (level_base + node) * nodeBytes,
                                   nodeBytes);
                        if (l == depth)
                            break;
                        unsigned octant = ((b.x >> shift) & 1u) |
                                          (((b.y >> shift) & 1u) << 1) |
                                          (((b.z >> shift) & 1u) << 2);
                        level_base += level_size;
                        level_size *= 8;
                        node = node * 8 + octant;
                        --shift;
                    }
                    // Update the body with the accumulated force.
                    batch.read(bodies_va + b.index * bodyBytes, bodyBytes);
                    batch.execute(_params.workPerBody);
                    batch.write(bodies_va + b.index * bodyBytes,
                                bodyBytes);
                    ++_bodiesProcessed;
                }
            }
        },
        "barnes-work");

    env.registerState(_workTid, bodies_va, _params.bodies * bodyBytes);
    env.registerState(_workTid, nodes_va, nodes * nodeBytes);
}

bool
BarnesWorkload::verify() const
{
    return _bodiesProcessed ==
           static_cast<uint64_t>(_params.bodies) * _params.passes;
}

} // namespace atl
