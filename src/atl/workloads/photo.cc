#include "atl/workloads/photo.hh"

#include <algorithm>
#include <sstream>

#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

namespace
{

/** Bytes per RGB pixel. */
constexpr unsigned pixelBytes = 3;

} // namespace

std::string
PhotoWorkload::description() const
{
    return "applies a 3x3 softening filter to an rgb pixmap; a separate "
           "thread retouches each row of pixels and reuses state "
           "prefetched by neighbouring rows";
}

std::string
PhotoWorkload::parameters() const
{
    std::ostringstream os;
    os << "applies a softening filter to an rgb pixmap of size "
       << _params.width << "x" << _params.height << "; creates "
       << _params.height << " threads";
    return os.str();
}

VAddr
PhotoWorkload::inAddr(unsigned row, unsigned col) const
{
    return _inVa + (static_cast<uint64_t>(row) * _params.width + col) *
                       pixelBytes;
}

VAddr
PhotoWorkload::outAddr(unsigned row, unsigned col) const
{
    return _outVa + (static_cast<uint64_t>(row) * _params.width + col) *
                        pixelBytes;
}

uint8_t
PhotoWorkload::pixel(unsigned row, unsigned col, unsigned channel) const
{
    row = std::min(row, _params.height - 1);
    col = std::min(col, _params.width - 1);
    return _in[(static_cast<uint64_t>(row) * _params.width + col) *
                   pixelBytes +
               channel];
}

void
PhotoWorkload::setup(WorkloadEnv &env)
{
    _machine = &env.machine;
    _batchRefs = env.batchRefs;
    Machine &m = *_machine;

    uint64_t image_bytes = static_cast<uint64_t>(_params.width) *
                           _params.height * pixelBytes;
    _inVa = m.alloc(image_bytes, 64);
    _outVa = m.alloc(image_bytes, 64);
    _in.resize(image_bytes);
    _out.assign(image_bytes, 0);

    Rng rng(_params.seed);
    for (auto &byte : _in)
        byte = static_cast<uint8_t>(rng.below(256));

    uint64_t row_bytes =
        static_cast<uint64_t>(_params.width) * pixelBytes;

    _rowTids.assign(_params.height, InvalidThreadId);
    Tracer *tracer = env.tracer;

    // The main thread creates a thread per row (as the paper's photo
    // does); row threads are placed on the creator's processor and fan
    // out across the machine through work stealing, after which the
    // annotations keep each processor on a contiguous band of rows.
    m.spawn(
        [this, &m, tracer, row_bytes] {
            for (unsigned r = 0; r < _params.height; ++r) {
                ThreadId tid =
                    m.spawn([this, r] { filterRow(r); },
                            "photo-row-" + std::to_string(r));
                _rowTids[r] = tid;

                // State of a row thread: input rows r-1..r+1 plus its
                // output row.
                unsigned first = r > 0 ? r - 1 : 0;
                unsigned last = std::min(r + 1, _params.height - 1);
                if (tracer) {
                    tracer->registerState(tid, inAddr(first, 0),
                                          (last - first + 1) *
                                              row_bytes);
                    tracer->registerState(tid, outAddr(r, 0), row_bytes);
                }

                // "During the course of computation, a thread accesses
                // the states of several 'neighbor' rows. The
                // annotations indicate that the closer the
                // corresponding row numbers, the more prefetched state
                // is reused." A thread's state is 4 row-sized units (3
                // input + 1 output): distance 1 shares 2 input rows
                // (q = 0.5), distance 2 shares 1 (q = 0.25); beyond
                // that the user extends the decaying-hint window so a
                // processor stays in its band even while the nearest
                // neighbours are already running elsewhere. Emitted as
                // each thread is created: earlier rows may already be
                // executing.
                if (_params.annotate) {
                    for (unsigned d = 1;
                         d <= annotationWindow && d <= r; ++d) {
                        double q = 0.5 / static_cast<double>(d);
                        m.share(_rowTids[r], _rowTids[r - d], q);
                        m.share(_rowTids[r - d], _rowTids[r], q);
                    }
                }
            }
        },
        "photo-main");
}

void
PhotoWorkload::filterRow(unsigned row)
{
    Machine &m = *_machine;
    unsigned w = _params.width;

    if (row == _monitorRow && _rowStartHook)
        _rowStartHook();

    RefBatch batch(m, _batchRefs);
    for (unsigned x = 0; x < w; ++x) {
        // Modelled reads: the 3-pixel neighbourhood in each of the three
        // input rows (edge rows clamp to themselves).
        unsigned x0 = x > 0 ? x - 1 : 0;
        unsigned x1 = std::min(x + 1, w - 1);
        uint64_t span = (x1 - x0 + 1) * pixelBytes;
        unsigned r0 = row > 0 ? row - 1 : 0;
        unsigned r1 = std::min(row + 1, _params.height - 1);
        for (unsigned r = r0; r <= r1; ++r)
            batch.read(inAddr(r, x0), span);

        // Host computation: per-channel 3x3 box average.
        for (unsigned c = 0; c < pixelBytes; ++c) {
            unsigned sum = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    unsigned rr = static_cast<unsigned>(
                        std::clamp<int>(static_cast<int>(row) + dy, 0,
                                        static_cast<int>(
                                            _params.height - 1)));
                    unsigned cc = static_cast<unsigned>(
                        std::clamp<int>(static_cast<int>(x) + dx, 0,
                                        static_cast<int>(w - 1)));
                    sum += pixel(rr, cc, c);
                }
            }
            _out[(static_cast<uint64_t>(row) * w + x) * pixelBytes + c] =
                static_cast<uint8_t>(sum / 9);
        }
        batch.write(outAddr(row, x), pixelBytes);
    }
    ++_rowsDone;
}

bool
PhotoWorkload::verify() const
{
    if (_rowsDone != _params.height)
        return false;
    // Recompute a deterministic sample of output pixels.
    for (uint64_t s = 0; s < 2048; ++s) {
        unsigned row = static_cast<unsigned>((s * 2654435761u) %
                                             _params.height);
        unsigned col = static_cast<unsigned>((s * 40503u) % _params.width);
        for (unsigned c = 0; c < pixelBytes; ++c) {
            unsigned sum = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    unsigned rr = static_cast<unsigned>(
                        std::clamp<int>(static_cast<int>(row) + dy, 0,
                                        static_cast<int>(
                                            _params.height - 1)));
                    unsigned cc = static_cast<unsigned>(
                        std::clamp<int>(static_cast<int>(col) + dx, 0,
                                        static_cast<int>(
                                            _params.width - 1)));
                    sum += pixel(rr, cc, c);
                }
            }
            uint8_t expect = static_cast<uint8_t>(sum / 9);
            if (_out[(static_cast<uint64_t>(row) * _params.width + col) *
                         pixelBytes +
                     c] != expect) {
                return false;
            }
        }
    }
    return true;
}

} // namespace atl
