/**
 * @file
 * A Barnes-Hut style hierarchical N-body kernel: the synthetic analogue
 * of SPLASH-2 `barnes` used for the model-accuracy study (paper Figures
 * 5 and 6). The work thread walks an octree from the root for every
 * body, reading the node path and updating the body — a reference
 * stream with substantial clustering (tree tops are hot, bodies are
 * visited in Morton order), which is exactly why the paper observes the
 * model slightly over-predicting footprints for C applications
 * ("barnes was specifically optimized for locality ... and the
 * predicted footprints for barnes are somewhat higher than observed").
 */

#ifndef ATL_WORKLOADS_BARNES_HH
#define ATL_WORKLOADS_BARNES_HH

#include "atl/workloads/workload.hh"

namespace atl
{

/** Octree force-walk kernel. */
class BarnesWorkload : public MonitoredWorkload
{
  public:
    struct Params
    {
        /** Number of bodies (32 modelled bytes each). */
        uint64_t bodies = 16384;
        /** Octree depth (levels below the root). */
        unsigned treeDepth = 4;
        /** Force-computation passes over all bodies. */
        unsigned passes = 2;
        /** Host instructions of force arithmetic per body per pass. */
        uint64_t workPerBody = 60;
        /** RNG seed for body positions. */
        uint64_t seed = 31;
    };

    explicit BarnesWorkload(Params params) : _params(params) {}

    std::string name() const override { return "barnes"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return false; }

  private:
    Params _params;
    uint64_t _bodiesProcessed = 0;
};

} // namespace atl

#endif // ATL_WORKLOADS_BARNES_HH
