/**
 * @file
 * The random-memory-walk microbenchmark of paper Section 3.2 (Figure 4).
 *
 * A "main" walker thread performs a uniformly random walk over a region
 * larger than the E-cache while a configurable set of sleeper threads
 * hold established cache state: sleepers may be disjoint from the walker
 * (independent case) or own a region that covers a fraction q of the
 * walker's walk region (dependent case — fraction q of the walker's
 * misses land in the sleeper's state). The bench tracks every thread's
 * observed footprint against the model as the walk unfolds.
 */

#ifndef ATL_WORKLOADS_RANDOM_WALK_HH
#define ATL_WORKLOADS_RANDOM_WALK_HH

#include <functional>

#include "atl/workloads/workload.hh"

namespace atl
{

/**
 * The walker-and-sleepers microbenchmark.
 */
class RandomWalkWorkload : public Workload
{
  public:
    /** One sleeping thread holding cache state. */
    struct SleeperSpec
    {
        /** Private state lines, disjoint from everything. */
        uint64_t privateLines = 0;
        /** Fraction of the walker's region included in this sleeper's
         *  state (the sharing coefficient q of the (walker, sleeper)
         *  arc). 0 makes the sleeper independent. */
        double shareOfWalker = 0.0;
        /** How many of its own lines the sleeper touches before
         *  blocking (establishes the initial footprint). */
        uint64_t warmLines = 0;
    };

    struct Params
    {
        /** Walker region size in E-cache lines (should exceed the
         *  cache). */
        uint64_t walkerLines = 32768;
        /** Number of random accesses the walker performs. */
        uint64_t steps = 400000;
        /** Sleeping threads. */
        std::vector<SleeperSpec> sleepers;
        /** RNG seed. */
        uint64_t seed = 42;
    };

    explicit RandomWalkWorkload(Params params);

    std::string name() const override { return "random-walk"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return true; }

    /** Walker thread id (valid after setup). */
    ThreadId walkerTid() const { return _walkerTid; }

    /** Sleeper thread ids, in spec order (valid after setup). */
    const std::vector<ThreadId> &sleeperTids() const
    {
        return _sleeperTids;
    }

    /** Called from the walker thread after all sleepers have warmed
     *  their state, right before the walk starts: the moment for the
     *  bench to arm its footprint monitor. */
    void onWalkStart(std::function<void()> hook)
    {
        _walkStartHook = std::move(hook);
    }

  private:
    Params _params;
    ThreadId _walkerTid = InvalidThreadId;
    std::vector<ThreadId> _sleeperTids;
    /** Sharing arcs to emit once the walker exists: (sleeper, q). */
    std::vector<std::pair<ThreadId, double>> _needShare;
    std::function<void()> _walkStartHook;
    uint64_t _stepsDone = 0;
    bool _ranSetup = false;
};

} // namespace atl

#endif // ATL_WORKLOADS_RANDOM_WALK_HH
