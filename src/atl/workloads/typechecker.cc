#include "atl/workloads/typechecker.hh"

#include <sstream>

#include "atl/runtime/sync.hh"
#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

namespace
{

/** Modelled bytes per type-graph node; only the header is read. */
constexpr uint64_t typeNodeBytes = 128;
constexpr uint64_t typeHeaderBytes = 64;

/** Modelled bytes per AST node; like type nodes, only the 64-byte
 *  header is read during the walk. */
constexpr uint64_t astNodeBytes = 128;

} // namespace

std::string
TypecheckerWorkload::description() const
{
    return "semantic analysis of an abstract machine tree against a "
           "large type graph (the Sather compiler compiling itself): an "
           "intensive reload burst followed by a creation-order AST walk "
           "with long run lengths";
}

std::string
TypecheckerWorkload::parameters() const
{
    std::ostringstream os;
    os << _params.typeNodes << " type nodes, " << _params.astNodes
       << " AST nodes, " << _params.lookupsPerNode << " lookups/node";
    return os.str();
}

void
TypecheckerWorkload::setup(WorkloadEnv &env)
{
    Machine &m = env.machine;

    VAddr types_va = m.alloc(_params.typeNodes * typeNodeBytes, 64);
    VAddr ast_va = m.alloc(_params.astNodes * astNodeBytes, 64);

    auto sync = std::make_shared<Semaphore>(m, 0);

    // Parser/graph-builder stage: creates the type graph and the AST
    // (in creation order, which is also the later traversal order).
    m.spawn(
        [&m, types_va, ast_va, sync, this] {
            m.write(types_va, _params.typeNodes * typeNodeBytes);
            m.write(ast_va, _params.astNodes * astNodeBytes);
            sync->post();
        },
        "typechecker-parse");

    Params p = _params;
    bool batch_refs = env.batchRefs;
    _workTid = m.spawn(
        [this, &m, types_va, ast_va, sync, p, batch_refs] {
            sync->wait();
            callWorkStart();
            Rng rng(p.seed);
            RefBatch batch(m, batch_refs);

            // Phase 1: the burst — the whole type graph (headers) is
            // brought into cache while subtyping tables are built.
            for (uint64_t t = 0; t < p.typeNodes; ++t)
                batch.read(types_va + t * typeNodeBytes, typeHeaderBytes);

            // Phase 2: the walk — AST nodes strictly in creation order,
            // each consulting a few (skewed towards hot core) types.
            for (uint64_t a = 0; a < p.astNodes; ++a) {
                batch.read(ast_va + a * astNodeBytes, typeHeaderBytes);
                for (unsigned l = 0; l < p.lookupsPerNode; ++l) {
                    uint64_t t = rng.zipf(p.typeNodes, p.zipfSkew);
                    batch.read(types_va + t * typeNodeBytes,
                               typeHeaderBytes);
                }
                batch.execute(p.workPerNode);
                ++_nodesChecked;
            }
        },
        "typechecker-work");

    env.registerState(_workTid, types_va, p.typeNodes * typeNodeBytes);
    env.registerState(_workTid, ast_va, p.astNodes * astNodeBytes);
}

bool
TypecheckerWorkload::verify() const
{
    return _nodesChecked == _params.astNodes;
}

} // namespace atl
