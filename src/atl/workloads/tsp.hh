/**
 * @file
 * The `tsp` benchmark (paper Table 2/4, Section 5): branch-and-bound
 * traveling salesman. The solution space is repeatedly divided into two
 * subspaces represented as adjacency matrices allocated on the heap and
 * initialised by the splitting (parent) thread from the original
 * subspace — so parents prefetch part of their children's state, which
 * the annotations express.
 *
 * The paper notes tsp is non-deterministic and therefore recorded a
 * fixed task tree once and benchmarked every policy for equal "work";
 * we reproduce that methodology directly: the subproblem tree is a
 * fixed-depth binary tree (about 1000 threads) whose per-node work is
 * identical across policies, and pruning only affects which suboptimal
 * tour is recorded, never the work done.
 */

#ifndef ATL_WORKLOADS_TSP_HH
#define ATL_WORKLOADS_TSP_HH

#include <atomic>

#include "atl/runtime/sync.hh"
#include "atl/workloads/workload.hh"

namespace atl
{

/** Fixed-work branch-and-bound TSP. */
class TspWorkload : public Workload
{
  public:
    struct Params
    {
        /** Number of cities (paper: 100). */
        unsigned cities = 100;
        /** Depth of the fixed subproblem tree; the run executes
         *  2^(depth+1) - 1 threads (paper measured 1000 threads:
         *  depth 9 gives 1023). */
        unsigned depth = 9;
        /** RNG seed for city coordinates. */
        uint64_t seed = 23;
        /** Emit at_share annotations (ablation switch). */
        bool annotate = true;
    };

    explicit TspWorkload(Params params) : _params(params) {}

    std::string name() const override { return "tsp"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return _params.annotate; }

    /** Best tour length found. */
    uint64_t bestLength() const { return _bestLength; }

    /** Threads created (valid after the run). */
    uint64_t threadsCreated() const { return _threadsCreated; }

    /**
     * Hook invoked by the thread exploring the given implicit-tree node
     * (root = 1) as it begins its split/bound work — the footprint
     * monitoring point.
     */
    void
    onNodeStart(uint64_t node, std::function<void()> hook)
    {
        _monitorNode = node;
        _nodeStartHook = std::move(hook);
    }

  private:
    /** One subspace: a modelled adjacency matrix plus host mirror. */
    struct Subspace
    {
        VAddr matrixVa = 0;
        std::vector<uint32_t> matrix; ///< host mirror, row-major
    };

    /** Body of the thread exploring one subproblem-tree node.
     *  @param parent subspace to derive from (null at the root)
     *  @param node index of this node in the implicit tree
     *  @param level depth of this node */
    void explore(std::shared_ptr<Subspace> parent, uint64_t node,
                 unsigned level);

    /** Derive a child's subspace from the parent's: the parent copies
     *  the matrix, applying the branching constraint. All reads/writes
     *  are modelled. */
    std::shared_ptr<Subspace> split(Subspace &parent, uint64_t child_node);

    /** Greedy nearest-neighbour tour over a subspace (modelled reads).
     *  @return tour length */
    uint64_t greedyTour(Subspace &space, std::vector<unsigned> &tour);

    Params _params;
    Machine *_machine = nullptr;
    Tracer *_tracer = nullptr;
    bool _batchRefs = true;
    uint64_t _matrixBytes = 0;

    std::unique_ptr<Mutex> _bestLock;
    VAddr _bestVa = 0;
    uint64_t _bestLength = ~0ull;
    std::vector<unsigned> _bestTour;

    std::vector<uint32_t> _distance; ///< ground-truth distances
    std::atomic<uint64_t> _threadsCreated{0}; ///< bumped by fibers on any host worker
    uint64_t _monitorNode = 0;
    std::function<void()> _nodeStartHook;
};

} // namespace atl

#endif // ATL_WORKLOADS_TSP_HH
