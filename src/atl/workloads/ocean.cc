#include "atl/workloads/ocean.hh"

#include <cmath>
#include <sstream>

#include "atl/runtime/sync.hh"
#include "atl/util/logging.hh"
#include "atl/util/rng.hh"

namespace atl
{

std::string
OceanWorkload::description() const
{
    return "studies large-scale ocean movements: red-black Gauss-Seidel "
           "relaxation over a 2-D grid with a 5-point stencil";
}

std::string
OceanWorkload::parameters() const
{
    std::ostringstream os;
    os << _params.edge << "x" << _params.edge << " grid, "
       << _params.iterations << " iterations";
    return os.str();
}

void
OceanWorkload::setup(WorkloadEnv &env)
{
    Machine &m = env.machine;
    unsigned edge = _params.edge;
    atl_assert(edge >= 4, "grid too small");

    uint64_t grid_bytes = static_cast<uint64_t>(edge) * edge * 8;
    VAddr grid_va = m.alloc(grid_bytes, 64);

    auto field = std::make_shared<std::vector<double>>(
        static_cast<size_t>(edge) * edge);
    Rng rng(_params.seed);
    for (auto &v : *field)
        v = rng.uniform();

    auto sync = std::make_shared<Semaphore>(m, 0);

    m.spawn(
        [&m, grid_va, grid_bytes, sync] {
            m.write(grid_va, grid_bytes);
            sync->post();
        },
        "ocean-init");

    unsigned iters = _params.iterations;
    bool batch_refs = env.batchRefs;
    _workTid = m.spawn(
        [this, &m, grid_va, field, sync, edge, iters, batch_refs] {
            sync->wait();
            callWorkStart();
            auto at = [edge](unsigned r, unsigned c) {
                return static_cast<size_t>(r) * edge + c;
            };
            RefBatch batch(m, batch_refs);
            for (unsigned it = 0; it < iters; ++it) {
                for (unsigned colour = 0; colour < 2; ++colour) {
                    for (unsigned r = 1; r + 1 < edge; ++r) {
                        for (unsigned c = 1 + ((r + colour) & 1u);
                             c + 1 < edge; c += 2) {
                            // Modelled stencil: north, south, and the
                            // contiguous west-centre-east triple.
                            batch.read(grid_va + at(r - 1, c) * 8, 8);
                            batch.read(grid_va + at(r + 1, c) * 8, 8);
                            batch.read(grid_va + at(r, c - 1) * 8, 24);
                            double v = 0.25 * ((*field)[at(r - 1, c)] +
                                               (*field)[at(r + 1, c)] +
                                               (*field)[at(r, c - 1)] +
                                               (*field)[at(r, c + 1)]);
                            _residual +=
                                std::fabs(v - (*field)[at(r, c)]);
                            (*field)[at(r, c)] = v;
                            batch.write(grid_va + at(r, c) * 8, 8);
                            ++_pointsRelaxed;
                        }
                    }
                }
            }
        },
        "ocean-work");

    env.registerState(_workTid, grid_va, grid_bytes);
}

bool
OceanWorkload::verify() const
{
    uint64_t interior = static_cast<uint64_t>(_params.edge - 2) *
                        (_params.edge - 2);
    // Red+black together touch every interior point once per iteration.
    return _pointsRelaxed == interior * _params.iterations &&
           std::isfinite(_residual);
}

} // namespace atl
