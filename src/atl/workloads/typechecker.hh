/**
 * @file
 * A compiler type-checking kernel modelled on the Sather typechecker,
 * the second application for which the paper's model substantially
 * over-predicts footprints (Figure 7, Section 3.4): the unblocking
 * thread "initially experiences a very intensive burst of misses as the
 * type graph is brought into cache", then "walks the abstract machine
 * tree ... in the order of creation which causes long run lengths and
 * high clustering of cache references" — Agarwal's nonstationary
 * behaviour.
 *
 * The type graph is larger than the E-cache with 128-byte nodes of
 * which only the 64-byte header is read (so only every other cache set
 * is ever used, bounding the observed footprint at half the cache while
 * the model's prediction keeps growing toward N); the AST is traversed
 * strictly in creation order.
 */

#ifndef ATL_WORKLOADS_TYPECHECKER_HH
#define ATL_WORKLOADS_TYPECHECKER_HH

#include "atl/workloads/workload.hh"

namespace atl
{

/** Burst-then-walk typechecking kernel. */
class TypecheckerWorkload : public MonitoredWorkload
{
  public:
    struct Params
    {
        /** Type-graph nodes (128 modelled bytes each, 64 read). */
        uint64_t typeNodes = 16384;
        /** AST nodes (128 modelled bytes each, 64 read), walked in
         *  creation order. */
        uint64_t astNodes = 32768;
        /** Type-graph consultations per AST node. */
        unsigned lookupsPerNode = 3;
        /** Zipf skew of type-graph lookups (hot core types). */
        double zipfSkew = 0.8;
        /** Host instructions of semantic analysis per AST node. */
        uint64_t workPerNode = 40;
        /** RNG seed. */
        uint64_t seed = 47;
    };

    explicit TypecheckerWorkload(Params params) : _params(params) {}

    std::string name() const override { return "typechecker"; }
    std::string description() const override;
    std::string parameters() const override;
    void setup(WorkloadEnv &env) override;
    bool verify() const override;
    bool usesAnnotations() const override { return false; }

  private:
    Params _params;
    uint64_t _nodesChecked = 0;
};

} // namespace atl

#endif // ATL_WORKLOADS_TYPECHECKER_HH
