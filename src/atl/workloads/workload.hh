/**
 * @file
 * Common infrastructure for the benchmark workloads (paper Tables 2
 * and 4). A workload allocates modelled state, spawns Active Threads
 * that do real computation while mirroring their memory references into
 * the simulated hierarchy, registers thread state with the tracer (so
 * footprints are observable), emits at_share() annotations, and can
 * verify its own output after the run.
 */

#ifndef ATL_WORKLOADS_WORKLOAD_HH
#define ATL_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "atl/runtime/machine.hh"
#include "atl/runtime/refbatch.hh"
#include "atl/sim/tracer.hh"

namespace atl
{

/** Everything a workload needs at setup time. */
struct WorkloadEnv
{
    Machine &machine;
    /** Optional ground-truth instrumentation. */
    Tracer *tracer = nullptr;
    /**
     * Issue modelled references through the block-issue pipeline
     * (RefBatch) instead of one Machine call per reference. Either way
     * the machine sees the same reference stream and produces
     * bit-identical metrics; batching is just cheaper. Workloads capture
     * this at setup() time.
     */
    bool batchRefs = true;

    /** Register thread state when tracing is on (no-op otherwise). */
    void
    registerState(ThreadId tid, VAddr va, uint64_t bytes) const
    {
        if (tracer)
            tracer->registerState(tid, va, bytes);
    }
};

/**
 * One benchmark application. setup() runs before machine.run(): it
 * allocates state and spawns at least the root thread; everything else
 * can happen from inside threads.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier (table row label). */
    virtual std::string name() const = 0;

    /** One-line description (paper Table 2). */
    virtual std::string description() const = 0;

    /** Input-parameter summary (paper Table 4). */
    virtual std::string parameters() const = 0;

    /** Allocate state and spawn threads. */
    virtual void setup(WorkloadEnv &env) = 0;

    /** Check output correctness after the run. */
    virtual bool verify() const = 0;

    /**
     * Whether the workload uses at_share() annotations (tasks has
     * disjoint state, so annotations are not relevant there).
     */
    virtual bool usesAnnotations() const { return true; }
};

/**
 * Base for the model-accuracy kernels (paper Section 3.3): an "init"
 * stage brings the data into being while the "work" thread is blocked;
 * when the work thread resumes, it announces the fact through a hook so
 * the bench can flush the cache and arm its footprint monitor — exactly
 * the paper's measurement protocol ("the 'work' threads are blocked
 * during the computation stage and their state is flushed from the
 * cache; after threads resume, their footprints are monitored").
 */
class MonitoredWorkload : public Workload
{
  public:
    /** The monitored work thread (valid after setup). */
    ThreadId workTid() const { return _workTid; }

    /** Hook invoked from the work thread right as it starts computing. */
    void
    onWorkStart(std::function<void()> hook)
    {
        _workStartHook = std::move(hook);
    }

  protected:
    /** Invoke the hook, if any. */
    void
    callWorkStart()
    {
        if (_workStartHook)
            _workStartHook();
    }

    ThreadId _workTid = InvalidThreadId;
    std::function<void()> _workStartHook;
};

/**
 * A host array paired with a modelled address range: element accesses
 * do the real work on host memory *and* issue the matching modelled
 * reference, which is exactly what Shade observed for the paper's
 * applications.
 */
template <typename T>
class ModelledArray
{
  public:
    /**
     * @param machine machine owning the address space
     * @param count number of elements
     */
    ModelledArray(Machine &machine, size_t count)
        : _machine(machine), _host(count),
          _va(machine.alloc(count * sizeof(T), 64))
    {}

    /** Modelled load + host read of element i. */
    T
    get(size_t i)
    {
        _machine.read(addr(i), sizeof(T));
        return _host[i];
    }

    /** Batched variant of get(): the load queues on the batch. */
    T
    get(RefBatch &batch, size_t i)
    {
        batch.read(addr(i), sizeof(T));
        return _host[i];
    }

    /** Modelled store + host write of element i. */
    void
    set(size_t i, const T &value)
    {
        _machine.write(addr(i), sizeof(T));
        _host[i] = value;
    }

    /** Batched variant of set(): the store queues on the batch. */
    void
    set(RefBatch &batch, size_t i, const T &value)
    {
        batch.write(addr(i), sizeof(T));
        _host[i] = value;
    }

    /** Modelled load of a contiguous element range [first, last). */
    void
    touchRange(size_t first, size_t last)
    {
        if (last > first)
            _machine.read(addr(first), (last - first) * sizeof(T));
    }

    /** Batched variant of touchRange(). */
    void
    touchRange(RefBatch &batch, size_t first, size_t last)
    {
        if (last > first)
            batch.read(addr(first), (last - first) * sizeof(T));
    }

    /** Modelled address of element i. */
    VAddr addr(size_t i) const { return _va + i * sizeof(T); }

    /** Base modelled address. */
    VAddr base() const { return _va; }

    /** Size of the modelled region in bytes. */
    uint64_t bytes() const { return _host.size() * sizeof(T); }

    /** Element count. */
    size_t size() const { return _host.size(); }

    /** Host storage, for verification without modelled traffic. */
    std::vector<T> &host() { return _host; }
    const std::vector<T> &host() const { return _host; }

  private:
    Machine &_machine;
    std::vector<T> _host;
    VAddr _va;
};

} // namespace atl

#endif // ATL_WORKLOADS_WORKLOAD_HH
