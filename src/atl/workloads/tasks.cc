#include "atl/workloads/tasks.hh"

#include <sstream>

#include "atl/util/logging.hh"

namespace atl
{

std::string
TasksWorkload::description() const
{
    return "identical threads with disjoint footprints that repeatedly "
           "wake, touch their state, and block for the duration they "
           "were active (Squillante & Lazowska affinity benchmark)";
}

std::string
TasksWorkload::parameters() const
{
    std::ostringstream os;
    os << _params.numTasks << " tasks, footprints "
       << _params.linesPerTask << " lines each, " << _params.periods
       << " scheduling periods per task";
    return os.str();
}

void
TasksWorkload::setup(WorkloadEnv &env)
{
    Machine &m = env.machine;
    uint64_t line = m.config().hierarchy.l2.lineBytes;
    uint64_t state_bytes = _params.linesPerTask * line;

    bool batch_refs = env.batchRefs;
    for (unsigned i = 0; i < _params.numTasks; ++i) {
        VAddr state = m.alloc(state_bytes, line);
        ThreadId tid = m.spawn(
            [this, &m, state, state_bytes, batch_refs] {
                RefBatch batch(m, batch_refs);
                for (unsigned p = 0; p < _params.periods; ++p) {
                    Cycles start = m.now();
                    batch.read(state, state_bytes);
                    // The activity duration is measured on the clock,
                    // so the references must land before now() reads it.
                    batch.flush();
                    ++_periodsDone;
                    Cycles active = m.now() - start;
                    m.sleep(active);
                }
            },
            "task-" + std::to_string(i));
        env.registerState(tid, state, state_bytes);
    }
}

bool
TasksWorkload::verify() const
{
    return _periodsDone ==
           static_cast<uint64_t>(_params.numTasks) * _params.periods;
}

} // namespace atl
