#include "atl/util/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "atl/util/logging.hh"

namespace atl
{

void
TextTable::header(std::vector<std::string> cells)
{
    _header = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths across header and all rows.
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(_header);
    for (const auto &r : _rows)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << " " << cell
               << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };

    os << "== " << _title << " ==\n";
    if (!_header.empty()) {
        emit(_header);
        os << "|";
        for (size_t w : widths)
            os << std::string(w + 2, '-') << "|";
        os << "\n";
    }
    for (const auto &r : _rows)
        emit(r);
    os << "\n";
}

FigureWriter::FigureWriter(std::ostream &os, std::string figure_id,
                           std::string x_label, std::string y_label)
    : _os(os), _figureId(std::move(figure_id))
{
    _os << "# figure " << _figureId << ": x=" << x_label
        << " y=" << y_label << "\n";
}

void
FigureWriter::series(const std::string &name,
                     const std::vector<std::pair<double, double>> &pts,
                     size_t stride)
{
    atl_assert(stride > 0, "stride must be positive");
    _os << "# series " << _figureId << " \"" << name << "\"\n";
    for (size_t i = 0; i < pts.size(); i += stride)
        _os << pts[i].first << "," << pts[i].second << "\n";
    if (!pts.empty() && (pts.size() - 1) % stride != 0) {
        _os << pts.back().first << "," << pts.back().second << "\n";
    }
}

} // namespace atl
