/**
 * @file
 * Status and error reporting facilities in the gem5 style.
 *
 * panic()  - an internal invariant of the library itself was violated;
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   - something works well enough but deserves attention.
 * inform() - normal operating status with no negative connotation.
 */

#ifndef ATL_UTIL_LOGGING_HH
#define ATL_UTIL_LOGGING_HH

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace atl
{

/** Severity of a log message. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
};

namespace detail
{

/**
 * Emit one formatted log record to stderr and take the terminal action
 * implied by the level (abort for Panic, exit(1) for Fatal).
 *
 * @param level severity class
 * @param file source file of the call site
 * @param line source line of the call site
 * @param message fully formatted message body
 */
[[gnu::cold]] void logMessage(LogLevel level, const char *file, int line,
                              const std::string &message);

/** Build a message string from a stream of heterogeneous parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

} // namespace detail

/** True while a death-test friendly mode is active (throws, no abort). */
bool logThrowMode();

/**
 * Enable or disable throw-on-panic mode. In throw mode, panic() and
 * fatal() raise LogError instead of terminating, which lets unit tests
 * assert on failure paths without forking death tests.
 */
void setLogThrowMode(bool enabled);

/**
 * Observer invoked for every Warn/Inform record (after the stderr
 * line, before any terminal action). Thread-local so concurrent sweep
 * jobs can each capture their own machine's warnings into telemetry
 * without locking or cross-talk.
 */
using WarnSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install a warn sink on the calling thread.
 * @return the previously installed sink (restore it when done)
 */
WarnSink setWarnSink(WarnSink sink);

/** Exception raised by panic()/fatal() while in throw mode. */
class LogError : public std::runtime_error
{
  public:
    LogError(LogLevel level, const std::string &what)
        : std::runtime_error(what), _level(level)
    {}

    /** Severity that produced this error. */
    LogLevel level() const { return _level; }

  private:
    LogLevel _level;
};

} // namespace atl

/** Report an internal library bug and abort (or throw in test mode). */
#define atl_panic(...)                                                     \
    ::atl::detail::logMessage(::atl::LogLevel::Panic, __FILE__, __LINE__,  \
                              ::atl::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user error and exit (or throw in test mode). */
#define atl_fatal(...)                                                     \
    ::atl::detail::logMessage(::atl::LogLevel::Fatal, __FILE__, __LINE__,  \
                              ::atl::detail::concat(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define atl_warn(...)                                                      \
    ::atl::detail::logMessage(::atl::LogLevel::Warn, __FILE__, __LINE__,   \
                              ::atl::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define atl_inform(...)                                                    \
    ::atl::detail::logMessage(::atl::LogLevel::Inform, __FILE__, __LINE__, \
                              ::atl::detail::concat(__VA_ARGS__))

/** Panic unless an internal invariant holds. */
#define atl_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            atl_panic("assertion '", #cond, "' failed ", __VA_ARGS__);     \
        }                                                                  \
    } while (0)

#endif // ATL_UTIL_LOGGING_HH
