/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harness to
 * print paper-style tables and figure series.
 */

#ifndef ATL_UTIL_TABLE_HH
#define ATL_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace atl
{

/**
 * A simple column-aligned text table. Rows are collected as strings and
 * printed with padded columns, suitable for terminal output that mirrors
 * the paper's tables.
 */
class TextTable
{
  public:
    /** @param title caption printed above the table */
    explicit TextTable(std::string title) : _title(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage (v=0.57 -> "57%"). */
    static std::string pct(double v, int precision = 0);

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Figure series emitter: prints one labelled (x, y) series per call in a
 * compact "# figure <id>" CSV block that downstream plotting can consume
 * and a human can eyeball.
 */
class FigureWriter
{
  public:
    /**
     * @param os destination stream
     * @param figure_id paper figure identifier (e.g. "4a")
     * @param x_label x axis label
     * @param y_label y axis label
     */
    FigureWriter(std::ostream &os, std::string figure_id,
                 std::string x_label, std::string y_label);

    /**
     * Emit one series.
     * @param name series label (e.g. "observed S0=2000")
     * @param pts (x, y) points
     * @param stride only every stride-th point is printed
     */
    void series(const std::string &name,
                const std::vector<std::pair<double, double>> &pts,
                size_t stride = 1);

  private:
    std::ostream &_os;
    std::string _figureId;
};

} // namespace atl

#endif // ATL_UTIL_TABLE_HH
