#include "atl/util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "atl/util/logging.hh"

namespace atl
{

bool
Json::asBool() const
{
    atl_assert(_kind == Kind::Bool, "JSON value is not a bool");
    return _bool;
}

double
Json::asNumber() const
{
    atl_assert(_kind == Kind::Number, "JSON value is not a number");
    return _number;
}

uint64_t
Json::asUint() const
{
    double n = asNumber();
    atl_assert(n >= 0.0, "JSON number is negative");
    return static_cast<uint64_t>(std::llround(n));
}

const std::string &
Json::asString() const
{
    atl_assert(_kind == Kind::String, "JSON value is not a string");
    return _string;
}

Json
Json::object()
{
    Json j;
    j._kind = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j._kind = Kind::Array;
    return j;
}

Json &
Json::operator[](const std::string &key)
{
    atl_assert(_kind == Kind::Object, "indexing a non-object JSON value");
    return _object[key];
}

const Json &
Json::at(const std::string &key) const
{
    static const Json null;
    if (_kind != Kind::Object)
        return null;
    auto it = _object.find(key);
    return it == _object.end() ? null : it->second;
}

bool
Json::has(const std::string &key) const
{
    return _kind == Kind::Object && _object.count(key) > 0;
}

void
Json::push(Json value)
{
    atl_assert(_kind == Kind::Array, "appending to a non-array JSON value");
    _array.push_back(std::move(value));
}

namespace
{

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

std::string
numberText(double d)
{
    // Integers print without a fraction so counters stay greppable.
    if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return buf;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent) const
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<size_t>(indent + 1) * 2, ' ');
    switch (_kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += _bool ? "true" : "false";
        break;
      case Kind::Number:
        out += numberText(_number);
        break;
      case Kind::String:
        escapeInto(out, _string);
        break;
      case Kind::Array: {
        if (_array.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (size_t i = 0; i < _array.size(); ++i) {
            out += inner;
            _array[i].dumpTo(out, indent + 1);
            if (i + 1 < _array.size())
                out += ',';
            out += '\n';
        }
        out += pad + "]";
        break;
      }
      case Kind::Object: {
        if (_object.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        size_t i = 0;
        for (const auto &[key, value] : _object) {
            out += inner;
            escapeInto(out, key);
            out += ": ";
            value.dumpTo(out, indent + 1);
            if (++i < _object.size())
                out += ',';
            out += '\n';
        }
        out += pad + "}";
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out += '\n';
    return out;
}

void
Json::dumpCompactTo(std::string &out) const
{
    switch (_kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += _bool ? "true" : "false";
        break;
      case Kind::Number:
        out += numberText(_number);
        break;
      case Kind::String:
        escapeInto(out, _string);
        break;
      case Kind::Array: {
        out += '[';
        for (size_t i = 0; i < _array.size(); ++i) {
            if (i)
                out += ',';
            _array[i].dumpCompactTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        size_t i = 0;
        for (const auto &[key, value] : _object) {
            if (i++)
                out += ',';
            escapeInto(out, key);
            out += ':';
            value.dumpCompactTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dumpCompact() const
{
    std::string out;
    dumpCompactTo(out);
    return out;
}

// ---------------------------------------------------------------------
// Parser: a plain recursive-descent over the text.
// ---------------------------------------------------------------------

namespace
{

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Bench documents only escape control characters, so a
                // raw byte append covers everything we emit.
                out += static_cast<char>(code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipSpace();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(value))
                    return false;
                out[key] = std::move(value);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipSpace();
            if (consume(']'))
                return true;
            for (;;) {
                Json value;
                if (!parseValue(value))
                    return false;
                out.push(std::move(value));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Json(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Json(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = Json();
            return true;
        }
        // Number.
        size_t end = pos;
        while (end < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[end])) ||
                text[end] == '-' || text[end] == '+' || text[end] == '.' ||
                text[end] == 'e' || text[end] == 'E'))
            ++end;
        if (end == pos)
            return fail("unexpected character");
        try {
            out = Json(std::stod(text.substr(pos, end - pos)));
        } catch (const std::exception &) {
            return fail("malformed number");
        }
        pos = end;
        return true;
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    Parser p{text};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace atl
