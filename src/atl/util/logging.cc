#include "atl/util/logging.hh"

#include <cstdio>

namespace atl
{

namespace
{

bool throwMode = false;

/** Per-thread warn/inform observer (sweep jobs run concurrently). */
thread_local WarnSink warnSink;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Warn: return "warn";
      case LogLevel::Inform: return "info";
    }
    return "?";
}

} // namespace

bool
logThrowMode()
{
    return throwMode;
}

void
setLogThrowMode(bool enabled)
{
    throwMode = enabled;
}

WarnSink
setWarnSink(WarnSink sink)
{
    WarnSink previous = std::move(warnSink);
    warnSink = std::move(sink);
    return previous;
}

namespace detail
{

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &message)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                 message.c_str(), file, line);

    if ((level == LogLevel::Warn || level == LogLevel::Inform) && warnSink)
        warnSink(level, message);

    if (level == LogLevel::Panic) {
        if (throwMode)
            throw LogError(level, message);
        std::abort();
    }
    if (level == LogLevel::Fatal) {
        if (throwMode)
            throw LogError(level, message);
        std::exit(1);
    }
}

} // namespace detail

} // namespace atl
