#include "atl/util/stats.hh"

#include <algorithm>
#include <cmath>

#include "atl/util/logging.hh"

namespace atl
{

void
Summary::add(double x)
{
    ++_count;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    _min = std::min(_min, x);
    _max = std::max(_max, x);
}

void
Summary::merge(const Summary &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    double delta = other._mean - _mean;
    uint64_t total = _count + other._count;
    double nb = static_cast<double>(other._count);
    double na = static_cast<double>(_count);
    _mean += delta * nb / static_cast<double>(total);
    _m2 += other._m2 + delta * delta * na * nb / static_cast<double>(total);
    _count = total;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
Summary::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : _lo(lo), _width((hi - lo) / static_cast<double>(bins)), _counts(bins, 0)
{
    atl_assert(bins > 0, "histogram needs at least one bin");
    atl_assert(hi > lo, "histogram range must be nonempty");
}

void
Histogram::add(double x)
{
    ++_total;
    if (x < _lo) {
        ++_underflow;
        return;
    }
    size_t i = static_cast<size_t>((x - _lo) / _width);
    if (i >= _counts.size()) {
        ++_overflow;
        return;
    }
    ++_counts[i];
}

uint64_t
Histogram::binCount(size_t i) const
{
    atl_assert(i < _counts.size(), "histogram bin out of range");
    return _counts[i];
}

double
Histogram::binLeft(size_t i) const
{
    return _lo + _width * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    atl_assert(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    if (_total == 0)
        return _lo;
    uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(_total - 1));
    uint64_t seen = _underflow;
    if (target < seen)
        return _lo;
    for (size_t i = 0; i < _counts.size(); ++i) {
        seen += _counts[i];
        if (target < seen)
            return binLeft(i) + _width * 0.5;
    }
    return _lo + _width * static_cast<double>(_counts.size());
}

void
Series::add(double x, double y)
{
    _points.emplace_back(x, y);
    if (_maxPoints > 0 && _points.size() > _maxPoints) {
        // Halve resolution: keep every other point, always keeping the
        // most recent one.
        std::vector<std::pair<double, double>> kept;
        kept.reserve(_points.size() / 2 + 1);
        for (size_t i = 0; i < _points.size(); i += 2)
            kept.push_back(_points[i]);
        if (kept.back() != _points.back())
            kept.push_back(_points.back());
        _points.swap(kept);
    }
}

double
Series::meanAbsRelError(const Series &observed, const Series &predicted,
                        double floor)
{
    size_t n = std::min(observed.size(), predicted.size());
    if (n == 0)
        return 0.0;
    double total = 0.0;
    size_t used = 0;
    for (size_t i = 0; i < n; ++i) {
        double ref = observed._points[i].second;
        if (std::fabs(ref) < floor)
            continue;
        total += std::fabs(predicted._points[i].second - ref) /
                 std::fabs(ref);
        ++used;
    }
    return used ? total / static_cast<double>(used) : 0.0;
}

} // namespace atl
