#include "atl/util/rng.hh"

#include <cmath>

#include "atl/util/logging.hh"

namespace atl
{

namespace
{

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : _state)
        word = splitmix64(s);
    // A state of all zeros is the one invalid xoshiro state; splitmix64
    // cannot produce four zero outputs in a row, but guard anyway.
    if (_state[0] == 0 && _state[1] == 0 && _state[2] == 0 && _state[3] == 0)
        _state[0] = 1;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(_state[1] * 5, 7) * 9;
    uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    atl_assert(bound > 0, "Rng::below bound must be positive");
    // Lemire-style rejection to remove modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    atl_assert(lo <= hi, "Rng::range requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    atl_assert(mean > 0.0, "exponential mean must be positive");
    double u = uniform();
    // uniform() can return exactly 0; nudge to keep log finite.
    if (u == 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

uint64_t
Rng::zipf(uint64_t n, double s)
{
    atl_assert(n > 0, "zipf needs a non-empty range");
    // Inverse-CDF by rejection against the continuous bounding curve
    // (Devroye). Exact enough for workload skew and allocation-free.
    if (s <= 0.0)
        return below(n);
    // The bounding-curve area diverges as s -> 1; switch to the
    // logarithmic form near it to avoid the 1/(1-s) singularity.
    bool harmonic = std::fabs(s - 1.0) < 1e-9;
    double t = harmonic
        ? 1.0 + std::log(static_cast<double>(n))
        : (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
    for (;;) {
        double u = uniform() * t;
        double x;
        if (u <= 1.0)
            x = u;
        else if (harmonic)
            x = std::exp(u - 1.0);
        else
            x = std::pow(u * (1.0 - s) + s, 1.0 / (1.0 - s));
        uint64_t k = static_cast<uint64_t>(x);
        if (k >= n)
            k = n - 1;
        double ratio = std::pow(static_cast<double>(k + 1), -s);
        double bound = (k == 0) ? 1.0 : std::pow(x, -s);
        if (uniform() * bound <= ratio)
            return k;
    }
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

} // namespace atl
