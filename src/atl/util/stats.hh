/**
 * @file
 * Lightweight statistics helpers used by the simulator and benches:
 * streaming summary statistics, fixed-bin histograms, and time series
 * with uniform downsampling for figure output.
 */

#ifndef ATL_UTIL_STATS_HH
#define ATL_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace atl
{

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 * Constant memory regardless of sample count.
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const Summary &other);

    /** Number of samples added. */
    uint64_t count() const { return _count; }

    /** Sample mean; 0 when empty. */
    double mean() const { return _mean; }

    /** Unbiased sample variance; 0 with fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return _min; }

    /** Largest sample; -inf when empty. */
    double max() const { return _max; }

    /** Sum of all samples. */
    double sum() const { return _mean * static_cast<double>(_count); }

  private:
    uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 1.0 / 0.0;
    double _max = -1.0 / 0.0;
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
 * saturating underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the binned range
     * @param hi exclusive upper bound of the binned range
     * @param bins number of equal-width bins, > 0
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in bin i. */
    uint64_t binCount(size_t i) const;

    /** Left edge of bin i. */
    double binLeft(size_t i) const;

    /** Samples below lo. */
    uint64_t underflow() const { return _underflow; }

    /** Samples at or above hi. */
    uint64_t overflow() const { return _overflow; }

    /** Total samples including under/overflow. */
    uint64_t total() const { return _total; }

    /** Number of bins. */
    size_t bins() const { return _counts.size(); }

    /**
     * Approximate quantile from the binned data (bin-midpoint rule).
     * @param q quantile in [0, 1]
     */
    double quantile(double q) const;

  private:
    double _lo;
    double _width;
    std::vector<uint64_t> _counts;
    uint64_t _underflow = 0;
    uint64_t _overflow = 0;
    uint64_t _total = 0;
};

/**
 * An (x, y) series with an optional cap on retained points. When the cap
 * is exceeded the series halves its resolution by dropping every other
 * point, which keeps figure output bounded for long runs while preserving
 * overall shape.
 */
class Series
{
  public:
    /** @param max_points retention cap; 0 means unlimited */
    explicit Series(size_t max_points = 0) : _maxPoints(max_points) {}

    /** Append a point; x values should be nondecreasing. */
    void add(double x, double y);

    /** Retained points, in x order. */
    const std::vector<std::pair<double, double>> &points() const
    {
        return _points;
    }

    /** Number of retained points. */
    size_t size() const { return _points.size(); }

    /** Mean absolute relative error against another series sampled at the
     *  same x positions (compared pointwise up to the shorter length,
     *  skipping points where the reference |y| < floor). */
    static double meanAbsRelError(const Series &observed,
                                  const Series &predicted,
                                  double floor = 1.0);

  private:
    size_t _maxPoints;
    std::vector<std::pair<double, double>> _points;
};

} // namespace atl

#endif // ATL_UTIL_STATS_HH
