/**
 * @file
 * A flat indexed binary min-heap: contiguous key/id arrays plus a
 * dense position index, giving O(1) top and membership, O(log n)
 * push/pop/erase/update (decrease- or increase-key), and O(1)
 * create/teardown (three vectors, no nodes). The same shape Graphite
 * uses for its event queue.
 *
 * Ids are small dense integers chosen by the caller (thread ids here);
 * the position index is a plain vector grown on demand, so ids should
 * be compact. Each id may be present at most once.
 *
 * Pop order is fully determined by the key ordering only when keys are
 * totally ordered with no duplicates (e.g. a (time, id) pair). With
 * duplicate keys, ties pop in an order that depends on the insertion
 * history — callers that need a deterministic tie-break must
 * disambiguate inside the key.
 */

#ifndef ATL_UTIL_MINHEAP_HH
#define ATL_UTIL_MINHEAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "atl/util/logging.hh"

namespace atl
{

template <typename Key, typename Id = uint32_t,
          typename Less = std::less<Key>>
class MinHeap
{
  public:
    /** True when the heap holds no entries. */
    bool empty() const { return _ids.empty(); }

    /** Number of entries. */
    size_t size() const { return _ids.size(); }

    /** Smallest key; heap must be nonempty. */
    const Key &
    topKey() const
    {
        atl_assert(!_ids.empty(), "topKey() on empty heap");
        return _keys[0];
    }

    /** Id carrying the smallest key; heap must be nonempty. */
    Id
    topId() const
    {
        atl_assert(!_ids.empty(), "topId() on empty heap");
        return _ids[0];
    }

    /** True when `id` is currently in the heap. */
    bool
    contains(Id id) const
    {
        size_t slot = static_cast<size_t>(id);
        return slot < _pos.size() && _pos[slot] != kNone;
    }

    /** Key of a present id. */
    const Key &
    keyOf(Id id) const
    {
        atl_assert(contains(id), "keyOf() on absent id");
        return _keys[_pos[static_cast<size_t>(id)]];
    }

    /** Insert `id` with `key`; `id` must not already be present. */
    void
    push(Id id, const Key &key)
    {
        atl_assert(!contains(id), "push() of id already in heap");
        size_t slot = static_cast<size_t>(id);
        if (slot >= _pos.size())
            _pos.resize(slot + 1, kNone);
        _keys.push_back(key);
        _ids.push_back(id);
        siftUp(_ids.size() - 1);
    }

    /** Remove the smallest entry; heap must be nonempty. */
    void
    pop()
    {
        atl_assert(!_ids.empty(), "pop() on empty heap");
        removeSlot(0);
    }

    /** Remove a present id from anywhere in the heap. */
    void
    erase(Id id)
    {
        atl_assert(contains(id), "erase() of absent id");
        removeSlot(_pos[static_cast<size_t>(id)]);
    }

    /** Change the key of a present id (decrease or increase). */
    void
    update(Id id, const Key &key)
    {
        atl_assert(contains(id), "update() of absent id");
        uint32_t slot = _pos[static_cast<size_t>(id)];
        _keys[slot] = key;
        // At most one of the sifts moves the entry; the other is a
        // single comparison.
        siftUp(slot);
        siftDown(_pos[static_cast<size_t>(id)]);
    }

    /** Remove every entry; keeps the index storage for reuse. */
    void
    clear()
    {
        for (Id id : _ids)
            _pos[static_cast<size_t>(id)] = kNone;
        _keys.clear();
        _ids.clear();
    }

  private:
    static constexpr uint32_t kNone = ~uint32_t(0);

    void
    place(size_t slot, const Key &key, Id id)
    {
        _keys[slot] = key;
        _ids[slot] = id;
        _pos[static_cast<size_t>(id)] = static_cast<uint32_t>(slot);
    }

    void
    siftUp(size_t slot)
    {
        Key key = _keys[slot];
        Id id = _ids[slot];
        while (slot > 0) {
            size_t parent = (slot - 1) / 2;
            if (!_less(key, _keys[parent]))
                break;
            place(slot, _keys[parent], _ids[parent]);
            slot = parent;
        }
        place(slot, key, id);
    }

    void
    siftDown(size_t slot)
    {
        const size_t len = _ids.size();
        Key key = _keys[slot];
        Id id = _ids[slot];
        while (true) {
            size_t child = 2 * slot + 1;
            if (child >= len)
                break;
            if (child + 1 < len && _less(_keys[child + 1], _keys[child]))
                ++child;
            if (!_less(_keys[child], key))
                break;
            place(slot, _keys[child], _ids[child]);
            slot = child;
        }
        place(slot, key, id);
    }

    /** Remove the entry at `slot`, refilling the hole from the back. */
    void
    removeSlot(size_t slot)
    {
        _pos[static_cast<size_t>(_ids[slot])] = kNone;
        size_t last = _ids.size() - 1;
        if (slot != last) {
            Key key = _keys[last];
            Id id = _ids[last];
            _keys.pop_back();
            _ids.pop_back();
            place(slot, key, id);
            siftUp(slot);
            siftDown(_pos[static_cast<size_t>(id)]);
        } else {
            _keys.pop_back();
            _ids.pop_back();
        }
    }

    std::vector<Key> _keys;
    std::vector<Id> _ids;
    std::vector<uint32_t> _pos;
    Less _less;
};

} // namespace atl

#endif // ATL_UTIL_MINHEAP_HH
