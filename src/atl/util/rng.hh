/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload reference streams,
 * page placement, tie breaking) flows through Rng so that every
 * simulation is exactly reproducible from a seed. The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period
 * and passes BigCrush; the standard <random> engines are avoided because
 * their distributions are not bit-reproducible across standard library
 * implementations.
 */

#ifndef ATL_UTIL_RNG_HH
#define ATL_UTIL_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace atl
{

/**
 * A self-contained xoshiro256** generator with helper distributions.
 *
 * The distribution helpers (uniform integer range, uniform double,
 * exponential, zipf) are implemented locally so results are identical on
 * every platform.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (rejection). */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive, lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /**
     * Zipf-like rank selection over [0, n): rank r is chosen with
     * probability proportional to 1 / (r + 1)^s. Used by workloads that
     * need skewed reuse patterns.
     */
    uint64_t zipf(uint64_t n, double s);

    /** Fork a child generator with an independent stream. */
    Rng split();

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (size_t i = c.size(); i > 1; --i) {
            size_t j = below(i);
            std::swap(c[i - 1], c[j]);
        }
    }

  private:
    std::array<uint64_t, 4> _state;
};

} // namespace atl

#endif // ATL_UTIL_RNG_HH
