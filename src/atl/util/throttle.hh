/**
 * @file
 * Reusable warning throttle. Several subsystems can be driven into
 * emitting the same harmless warning thousands of times (fault plans
 * produce dangling annotations and out-of-range coefficients by the
 * bucket); each call site wants "warn the first few times, then note
 * the suppression once, but keep counting". ThrottledWarn packages
 * that pattern so the count stays exact while the log stays readable.
 *
 * Usage:
 *     if (const char *suffix = _throttle.tick())
 *         atl_warn("something odd", suffix);
 * tick() returns nullptr once the limit has passed (stay silent), the
 * suppression notice on the limit-th call, and "" before it.
 */

#ifndef ATL_UTIL_THROTTLE_HH
#define ATL_UTIL_THROTTLE_HH

#include <cstdint>

namespace atl
{

/** Counts every occurrence but only licenses the first few warnings. */
class ThrottledWarn
{
  public:
    /** @param limit warnings allowed before going silent */
    explicit ThrottledWarn(uint64_t limit = 8) : _limit(limit) {}

    /**
     * Record one occurrence. @return nullptr when the warning should be
     * suppressed; otherwise the suffix to append to the message ("" for
     * an ordinary warning, the suppression notice on the last licensed
     * one).
     */
    const char *
    tick()
    {
        ++_count;
        if (_count > _limit)
            return nullptr;
        return _count == _limit ? " (further warnings suppressed)" : "";
    }

    /** Occurrences recorded, suppressed ones included. */
    uint64_t count() const { return _count; }

  private:
    uint64_t _count = 0;
    uint64_t _limit;
};

} // namespace atl

#endif // ATL_UTIL_THROTTLE_HH
