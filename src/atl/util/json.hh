/**
 * @file
 * Minimal JSON document model, writer and parser for the machine-
 * readable bench outputs (results/bench_*.json). Self-contained on
 * purpose: the container image carries no JSON library, and the bench
 * schema only needs objects, arrays, strings, numbers and booleans.
 *
 * Numbers are stored as doubles; integral values round-trip exactly up
 * to 2^53, far beyond any counter the simulator produces in one run.
 */

#ifndef ATL_UTIL_JSON_HH
#define ATL_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace atl
{

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : _kind(Kind::Bool), _bool(b) {}
    Json(double d) : _kind(Kind::Number), _number(d) {}
    Json(int64_t i) : _kind(Kind::Number), _number(static_cast<double>(i)) {}
    Json(uint64_t u) : _kind(Kind::Number), _number(static_cast<double>(u)) {}
    Json(int i) : _kind(Kind::Number), _number(i) {}
    Json(const char *s) : _kind(Kind::String), _string(s) {}
    Json(std::string s) : _kind(Kind::String), _string(std::move(s)) {}

    /** Kind of this value. */
    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isString() const { return _kind == Kind::String; }
    bool isNumber() const { return _kind == Kind::Number; }

    /** @name Scalar accessors (assert on kind mismatch) @{ */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() rounded to the nearest unsigned integer. */
    uint64_t asUint() const;
    const std::string &asString() const;
    /** @} */

    /** Make this value an (empty) object / array in place. */
    static Json object();
    static Json array();

    /** Object member access, creating the member (object kind only). */
    Json &operator[](const std::string &key);

    /** Object member lookup; null reference when absent or not object. */
    const Json &at(const std::string &key) const;

    /** True when an object member exists. */
    bool has(const std::string &key) const;

    /** Object members in key order (empty for non-objects). */
    const std::map<std::string, Json> &members() const { return _object; }

    /** Array append (array kind only). */
    void push(Json value);

    /** Array elements (empty for non-arrays). */
    const std::vector<Json> &items() const { return _array; }

    /** Serialise with 2-space indentation and a trailing newline. */
    std::string dump() const;

    /** Serialise on one line with no whitespace — the JSONL form the
     *  sweep journal and the child-process metrics pipe use. */
    std::string dumpCompact() const;

    /**
     * Parse a JSON text.
     * @param text the document
     * @param error set to a description on failure
     * @retval true on success, storing the value in out
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent) const;
    void dumpCompactTo(std::string &out) const;

    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Json> _array;
    std::map<std::string, Json> _object;
};

} // namespace atl

#endif // ATL_UTIL_JSON_HH
