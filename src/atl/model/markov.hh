/**
 * @file
 * The exact Markov chain from the paper's appendix, used to derive (and
 * here to validate) the dependent-thread closed form.
 *
 * State i in [0, N] is the number of cache lines of dependent thread C
 * resident in processor p's cache. Each miss taken by thread A moves the
 * chain:
 *
 *   p(i, i+1) = q (N - i) / N        (shared line fills a non-C slot)
 *   p(i, i-1) = (1 - q) i / N        (unshared line evicts a C line)
 *   p(i, i)   = q i / N + (1 - q)(N - i) / N
 *
 * The expectation obeys E_{t+1} = k E_t + q with k = (N-1)/N, whose
 * solution is exactly the closed form E_n = qN - (qN - S) k^n, so the
 * closed form is exact for expectations; the chain additionally gives
 * the full distribution (variance, tails) that the closed form cannot.
 */

#ifndef ATL_MODEL_MARKOV_HH
#define ATL_MODEL_MARKOV_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atl
{

/**
 * Tridiagonal footprint chain for one (cache size, sharing coefficient)
 * pair. The transition matrix is never materialised: stepping a
 * distribution is O(N) directly from the tridiagonal structure.
 */
class MarkovFootprintChain
{
  public:
    /**
     * @param n_lines cache size N in lines
     * @param q sharing coefficient on the (A, C) arc, in [0, 1]
     */
    MarkovFootprintChain(uint64_t n_lines, double q);

    /** Number of chain states (N + 1: footprints 0..N). */
    size_t numStates() const { return _n + 1; }

    /** Upward transition probability from state i. */
    double pUp(uint64_t i) const;

    /** Downward transition probability from state i. */
    double pDown(uint64_t i) const;

    /** Self-loop probability of state i. */
    double pStay(uint64_t i) const;

    /** Advance a distribution over states by one miss. */
    std::vector<double> step(const std::vector<double> &dist) const;

    /**
     * Distribution after n misses starting from the point distribution
     * at footprint s0.
     */
    std::vector<double> distributionAfter(uint64_t s0, uint64_t n) const;

    /** Expectation of a distribution over states. */
    static double expectation(const std::vector<double> &dist);

    /** Variance of a distribution over states. */
    static double variance(const std::vector<double> &dist);

    /** E[F_C] after n misses from initial footprint s0 (exact). */
    double expectedAfter(uint64_t s0, uint64_t n) const;

  private:
    uint64_t _n;
    double _q;
};

} // namespace atl

#endif // ATL_MODEL_MARKOV_HH
