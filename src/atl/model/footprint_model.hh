/**
 * @file
 * The shared-state cache model (paper Section 2.4 and Appendix).
 *
 * For a direct-mapped cache of N lines, with k = (N-1)/N and n the
 * number of misses taken by blocking thread A during its scheduling
 * interval, the expected footprints after the interval are:
 *
 *   blocking A     E[F_A] = N  - (N  - S_A) k^n
 *   independent B  E[F_B] = S_B k^n
 *   dependent C    E[F_C] = qN - (qN - S_C) k^n
 *
 * where S_X is the footprint at the start of the interval and q is the
 * sharing coefficient on arc (A, C). The dependent case is the general
 * one: q = 1 gives the blocking case, q = 0 the independent case.
 *
 * FootprintModel also offers the lazily-decayed representation the
 * scheduler uses: a footprint is stored as (S, m_snap) meaning
 * E[F](m) = S * k^(m - m_snap) for the processor's cumulative miss count
 * m, so untouched (independent) threads need no per-switch updates.
 */

#ifndef ATL_MODEL_FOOTPRINT_MODEL_HH
#define ATL_MODEL_FOOTPRINT_MODEL_HH

#include <cstdint>
#include <vector>

namespace atl
{

/**
 * Precomputed powers k^n for n in [0, max_n]; queries beyond max_n
 * clamp to k^max_n (the table is sized so that value is already at the
 * asymptote). The paper precomputes exactly this table to keep priority
 * updates to a few FP instructions.
 */
class PowTable
{
  public:
    /**
     * @param k base in (0, 1)
     * @param max_n largest exponent tabulated
     */
    PowTable(double k, uint64_t max_n);

    /** k^n, clamped to k^max_n beyond the tabulated range. Clamping
     *  (rather than returning 0) keeps the result monotone in n and
     *  nonzero, so ratios and logs of decayed footprints stay finite. */
    double
    pow(uint64_t n) const
    {
        return _table[n < _table.size() ? n : _table.size() - 1];
    }

    /** The base k. */
    double base() const { return _k; }

    /** Largest tabulated exponent. */
    uint64_t maxN() const { return _table.size() - 1; }

  private:
    double _k;
    std::vector<double> _table;
};

/**
 * Precomputed natural logarithms log(F) for integer F in [1, N]. The
 * paper tabulates these because N (cache lines) is only a few thousand.
 * Non-integer arguments interpolate linearly between neighbours, which
 * keeps the table useful for expected (fractional) footprints.
 */
class LogTable
{
  public:
    /** @param max_f largest tabulated argument (the cache size N). */
    explicit LogTable(uint64_t max_f);

    /**
     * log(f) for f in (0, maxF]; f below 1 is clamped to 1 (a footprint
     * under one line carries no useful priority information).
     */
    double log(double f) const;

    /** Largest tabulated argument. */
    uint64_t maxF() const { return _table.size() - 1; }

  private:
    std::vector<double> _table;
};

/**
 * The closed-form model for one cache geometry.
 */
class FootprintModel
{
  public:
    /**
     * @param n_lines cache size N in lines
     * @param max_pow largest miss count tabulated in the power table;
     *        intervals longer than this have fully decayed footprints
     */
    explicit FootprintModel(uint64_t n_lines, uint64_t max_pow = 1 << 18);

    /** Cache size N in lines. */
    double N() const { return _n; }

    /** k = (N-1)/N. */
    double k() const { return _pow.base(); }

    /** log k (negative). */
    double logK() const { return _logK; }

    /** k^n via the table. */
    double kPow(uint64_t n) const { return _pow.pow(n); }

    /** log via the table (see LogTable::log for clamping). */
    double logF(double f) const { return _log.log(f); }

    /** E[F_A] after the blocking thread itself takes n misses. */
    double blocking(double s, uint64_t n) const;

    /** E[F_B] of an independent thread after n misses by another. */
    double independent(double s, uint64_t n) const;

    /**
     * E[F_C] of a dependent thread with sharing coefficient q after n
     * misses by the thread it depends on.
     */
    double dependent(double q, double s, uint64_t n) const;

    /**
     * Lazily-decayed footprint: value at processor miss count m_now of a
     * footprint recorded as s at miss count m_snap.
     */
    double decayed(double s, uint64_t m_snap, uint64_t m_now) const;

  private:
    double _n;
    double _logK;
    PowTable _pow;
    LogTable _log;
};

/**
 * Variant of the model for set-associative caches (paper: "the developed
 * model can be extended to the associative cache case"). With W ways and
 * S = N/W sets, a miss selects a uniformly random set and evicts the LRU
 * way. Approximating the victim within the set as uniformly random
 * yields the same closed forms with the effective per-line displacement
 * probability 1/N unchanged; the first-order correction for LRU is that
 * a thread's own just-fetched lines are protected, captured here by an
 * effective cache size N_eff = N * (1 - 1/(2W)) for cross-thread decay.
 * The ablation bench quantifies how far the plain DM model drifts on
 * associative geometries versus this correction.
 */
class AssociativeFootprintModel
{
  public:
    /**
     * @param n_lines total lines N
     * @param ways associativity W
     * @param max_pow power-table range
     */
    AssociativeFootprintModel(uint64_t n_lines, unsigned ways,
                              uint64_t max_pow = 1 << 18);

    /** Decay base used for cross-thread displacement. */
    double k() const { return _pow.base(); }

    /** E[F] of an independent thread after n foreign misses. */
    double independent(double s, uint64_t n) const;

    /** E[F_A] of the blocking thread after its own n misses. */
    double blocking(double s, uint64_t n) const;

    /** E[F_C] of a dependent thread. */
    double dependent(double q, double s, uint64_t n) const;

  private:
    double _n;
    PowTable _pow;
};

} // namespace atl

#endif // ATL_MODEL_FOOTPRINT_MODEL_HH
