/**
 * @file
 * The LFF and CRT priority schemes (paper Section 4).
 *
 * Both policies need a priority that (a) orders runnable threads the
 * same way their expected footprints / cache-reload ratios would, and
 * (b) stays constant for threads *independent* of the blocking thread,
 * so the common case costs zero updates. With m(t) the processor's
 * cumulative E-cache miss count and k = (N-1)/N:
 *
 *   LFF:  p(t) = log E[F](t)                     - m(t) log k
 *   CRT:  p(t) = log E[F](t) - log E[F_last_run] - m(t) log k
 *
 * An independent footprint decays as E[F](t) = E[F](t0) k^(m(t)-m(t0)),
 * so both expressions are invariant in m for independent threads, while
 * at any fixed time they are strictly increasing in E[F] (LFF) and
 * strictly decreasing in the reload ratio R = 1 - E[F]/E[F_last_run]
 * (CRT). Updates are therefore only needed for the blocking thread and
 * its dependents: O(out-degree) work per context switch.
 *
 * Every floating-point operation on these paths is counted through
 * FpOpCounter so the Table 3 reproduction can report measured costs.
 */

#ifndef ATL_MODEL_PRIORITY_HH
#define ATL_MODEL_PRIORITY_HH

#include <cstdint>
#include <limits>

#include "atl/model/footprint_model.hh"

namespace atl
{

/** Locality scheduling policy selector. */
enum class PolicyKind
{
    FCFS, ///< first-come first-served baseline (no model)
    LFF,  ///< largest footprint first
    CRT,  ///< smallest cache-reload ratio
};

/** Human-readable policy name. */
const char *policyName(PolicyKind kind);

/**
 * Counts floating point operations (add/sub/mul/div; table lookups are
 * free, matching the paper's accounting) executed on priority-update
 * paths.
 */
class FpOpCounter
{
  public:
    /** Charge n floating point operations. */
    void charge(uint64_t n) { _ops += n; }

    /** Total operations charged. */
    uint64_t total() const { return _ops; }

    /** Reset the tally. */
    void reset() { _ops = 0; }

  private:
    uint64_t _ops = 0;
};

/**
 * Per-(thread, processor) footprint bookkeeping. The pair (s, mSnap)
 * lazily represents the trajectory E[F](m) = s * k^(m - mSnap), so a
 * record needs touching only when its thread is the blocking thread or
 * one of its dependents.
 */
struct FootprintRecord
{
    /** Expected footprint in lines, valid at miss count mSnap. */
    double s = 0.0;
    /** Processor cumulative miss count when s was computed. */
    uint64_t mSnap = 0;
    /** Time-invariant scheduling priority (scheme-specific). */
    double priority = -std::numeric_limits<double>::infinity();
    /** CRT: log of the expected footprint when the thread last ran here. */
    double logF0 = 0.0;
    /** Heap-entry generation, bumped to lazily invalidate stale entries. */
    uint64_t generation = 0;
    /** Whether the entry of the current generation sits in its heap.
     *  Lets the scheduler count live entries per heap without scanning,
     *  which drives stale-entry compaction. */
    bool inHeap = false;
};

/**
 * Priority computation for one processor's cache under one policy.
 * Stateless apart from the model reference and the op counter; the
 * records live with the scheduler.
 */
class PriorityScheme
{
  public:
    /**
     * @param kind LFF or CRT (FCFS never constructs a scheme)
     * @param model closed-form model for this cache geometry
     */
    PriorityScheme(PolicyKind kind, const FootprintModel &model);

    /**
     * Initialise the record of a thread that has never run on this
     * processor (creation-time placement): an empty footprint whose
     * priority is comparable with every other record at miss count
     * m_now — i.e. the lowest possible priority right now, which also
     * makes such threads the preferred victims for work stealing.
     */
    void initialise(FootprintRecord &rec, uint64_t m_now) const;

    /**
     * Begin a context switch on a processor: fixes the shared
     * -m(t) * log k term used by every update in this switch. One
     * multiplication, charged once per switch rather than per thread.
     *
     * @param m_now processor cumulative E-cache misses at the switch
     */
    void beginSwitch(uint64_t m_now);

    /**
     * Update the record of the blocking thread itself.
     * @param rec the thread's record on this processor
     * @param n E-cache misses it took during the scheduling interval
     */
    void updateBlocking(FootprintRecord &rec, uint64_t n);

    /**
     * Alternative heuristic for a blocking thread in a nonstationary
     * quiet phase (paper Section 3.4: after the reload burst, a thread
     * with a very low miss rate mostly takes conflict misses within its
     * own sets, which "do not significantly increase the footprint"):
     * hold the footprint constant across the interval instead of
     * growing it toward N.
     */
    void holdBlocking(FootprintRecord &rec);

    /**
     * Update the record of a thread dependent on the blocking thread.
     * @param rec the dependent's record on this processor
     * @param q sharing coefficient on the (blocker, dependent) arc
     * @param n misses taken by the blocking thread in the interval
     */
    void updateDependent(FootprintRecord &rec, double q, uint64_t n);

    /**
     * Materialise a record at dispatch time: collapse the lazy decay so
     * the blocking update at the end of the interval starts from the
     * footprint at dispatch. Priority is unchanged (it is invariant).
     *
     * @param rec record of the thread being dispatched
     * @param m_now processor cumulative misses at dispatch
     */
    void materialise(FootprintRecord &rec, uint64_t m_now);

    /** Expected footprint of a record at miss count m_now. */
    double expectedFootprint(const FootprintRecord &rec,
                             uint64_t m_now) const;

    /** Scheme selector. */
    PolicyKind kind() const { return _kind; }

    /** The op counter (shared accounting for Table 3). */
    FpOpCounter &ops() { return _ops; }

    /** Underlying closed-form model. */
    const FootprintModel &model() const { return _model; }

  private:
    /** Shared -m(t) log k term for the current switch. */
    double mLogK() const { return _mLogK; }

    PolicyKind _kind;
    const FootprintModel &_model;
    FpOpCounter _ops;
    double _mLogK = 0.0;
    uint64_t _mNow = 0;
};

} // namespace atl

#endif // ATL_MODEL_PRIORITY_HH
