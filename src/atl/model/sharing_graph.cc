#include "atl/model/sharing_graph.hh"

#include <algorithm>

#include "atl/util/logging.hh"

namespace atl
{

namespace
{

const std::vector<SharingEdge> emptyEdges;

} // namespace

int
SharingGraph::findEdge(const Node &node, ThreadId dst)
{
    for (size_t i = 0; i < node.out.size(); ++i) {
        if (node.out[i].dest == dst)
            return static_cast<int>(i);
    }
    return -1;
}

void
SharingGraph::share(ThreadId src, ThreadId dst, double q)
{
    if (src == dst)
        return;
    if (q < 0.0 || q > 1.0) {
        // Throttled: a buggy (or fault-injected) program can emit
        // out-of-range coefficients by the thousand, and each one is
        // harmlessly clamped.
        ++_clampWarnings;
        if (_clampWarnings <= 8) {
            atl_warn("sharing coefficient ", q, " for (", src, ",", dst,
                     ") clamped to [0,1]",
                     _clampWarnings == 8 ? " (further warnings suppressed)"
                                         : "");
        }
        q = std::clamp(q, 0.0, 1.0);
    }

    if (q == 0.0) {
        // Removing an unspecified arc is a no-op.
        auto it = _nodes.find(src);
        if (it == _nodes.end())
            return;
        int idx = findEdge(it->second, dst);
        if (idx < 0)
            return;
        it->second.out.erase(it->second.out.begin() + idx);
        --_edgeCount;
        auto dit = _nodes.find(dst);
        if (dit != _nodes.end()) {
            auto &sources = dit->second.inSources;
            sources.erase(std::remove(sources.begin(), sources.end(), src),
                          sources.end());
        }
        return;
    }

    Node &node = _nodes[src];
    int idx = findEdge(node, dst);
    if (idx >= 0) {
        node.out[static_cast<size_t>(idx)].q = q;
        return;
    }
    node.out.push_back({dst, q});
    _nodes[dst].inSources.push_back(src);
    ++_edgeCount;
}

double
SharingGraph::coefficient(ThreadId src, ThreadId dst) const
{
    auto it = _nodes.find(src);
    if (it == _nodes.end())
        return 0.0;
    int idx = findEdge(it->second, dst);
    return idx < 0 ? 0.0 : it->second.out[static_cast<size_t>(idx)].q;
}

const std::vector<SharingEdge> &
SharingGraph::outEdges(ThreadId src) const
{
    auto it = _nodes.find(src);
    return it == _nodes.end() ? emptyEdges : it->second.out;
}

size_t
SharingGraph::outDegree(ThreadId src) const
{
    return outEdges(src).size();
}

void
SharingGraph::removeThread(ThreadId tid)
{
    auto it = _nodes.find(tid);
    if (it == _nodes.end())
        return;

    // Drop outgoing arcs, fixing the destinations' in-source lists.
    for (const SharingEdge &edge : it->second.out) {
        auto dit = _nodes.find(edge.dest);
        if (dit != _nodes.end()) {
            auto &sources = dit->second.inSources;
            sources.erase(std::remove(sources.begin(), sources.end(), tid),
                          sources.end());
        }
        --_edgeCount;
    }

    // Drop incoming arcs from each recorded source.
    for (ThreadId src : it->second.inSources) {
        auto sit = _nodes.find(src);
        if (sit == _nodes.end())
            continue;
        int idx = findEdge(sit->second, tid);
        if (idx >= 0) {
            sit->second.out.erase(sit->second.out.begin() + idx);
            --_edgeCount;
        }
    }

    _nodes.erase(it);
}

} // namespace atl
