#include "atl/model/markov.hh"

#include "atl/util/logging.hh"

namespace atl
{

MarkovFootprintChain::MarkovFootprintChain(uint64_t n_lines, double q)
    : _n(n_lines), _q(q)
{
    atl_assert(n_lines >= 1, "chain needs at least one line");
    atl_assert(q >= 0.0 && q <= 1.0, "sharing coefficient must be in [0,1]");
}

double
MarkovFootprintChain::pUp(uint64_t i) const
{
    atl_assert(i <= _n, "state out of range");
    return _q * static_cast<double>(_n - i) / static_cast<double>(_n);
}

double
MarkovFootprintChain::pDown(uint64_t i) const
{
    atl_assert(i <= _n, "state out of range");
    return (1.0 - _q) * static_cast<double>(i) / static_cast<double>(_n);
}

double
MarkovFootprintChain::pStay(uint64_t i) const
{
    return 1.0 - pUp(i) - pDown(i);
}

std::vector<double>
MarkovFootprintChain::step(const std::vector<double> &dist) const
{
    atl_assert(dist.size() == numStates(), "distribution size mismatch");
    std::vector<double> next(dist.size(), 0.0);
    for (uint64_t i = 0; i <= _n; ++i) {
        double p = dist[i];
        if (p == 0.0)
            continue;
        next[i] += p * pStay(i);
        if (i < _n)
            next[i + 1] += p * pUp(i);
        if (i > 0)
            next[i - 1] += p * pDown(i);
    }
    return next;
}

std::vector<double>
MarkovFootprintChain::distributionAfter(uint64_t s0, uint64_t n) const
{
    atl_assert(s0 <= _n, "initial footprint exceeds cache size");
    std::vector<double> dist(numStates(), 0.0);
    dist[s0] = 1.0;
    for (uint64_t step_no = 0; step_no < n; ++step_no)
        dist = step(dist);
    return dist;
}

double
MarkovFootprintChain::expectation(const std::vector<double> &dist)
{
    double e = 0.0;
    for (size_t i = 0; i < dist.size(); ++i)
        e += static_cast<double>(i) * dist[i];
    return e;
}

double
MarkovFootprintChain::variance(const std::vector<double> &dist)
{
    double e = expectation(dist);
    double e2 = 0.0;
    for (size_t i = 0; i < dist.size(); ++i)
        e2 += static_cast<double>(i) * static_cast<double>(i) * dist[i];
    return e2 - e * e;
}

double
MarkovFootprintChain::expectedAfter(uint64_t s0, uint64_t n) const
{
    return expectation(distributionAfter(s0, n));
}

} // namespace atl
