#include "atl/model/footprint_model.hh"

#include <algorithm>
#include <cmath>

#include "atl/util/logging.hh"

namespace atl
{

PowTable::PowTable(double k, uint64_t max_n) : _k(k)
{
    atl_assert(k > 0.0 && k < 1.0, "PowTable base must be in (0,1)");
    _table.resize(max_n + 1);
    // Fill by repeated multiplication; renormalize periodically against
    // std::pow to stop error accumulation over very long tables.
    _table[0] = 1.0;
    for (uint64_t n = 1; n <= max_n; ++n) {
        if ((n & 0xfff) == 0)
            _table[n] = std::pow(k, static_cast<double>(n));
        else
            _table[n] = _table[n - 1] * k;
    }
}

LogTable::LogTable(uint64_t max_f)
{
    atl_assert(max_f >= 1, "LogTable needs a positive range");
    _table.resize(max_f + 1);
    _table[0] = 0.0; // unused: arguments below 1 clamp to log(1) = 0
    for (uint64_t f = 1; f <= max_f; ++f)
        _table[f] = std::log(static_cast<double>(f));
}

double
LogTable::log(double f) const
{
    if (f <= 1.0)
        return 0.0;
    double max = static_cast<double>(maxF());
    if (f >= max)
        return _table.back();
    uint64_t lo = static_cast<uint64_t>(f);
    double frac = f - static_cast<double>(lo);
    return _table[lo] + frac * (_table[lo + 1] - _table[lo]);
}

FootprintModel::FootprintModel(uint64_t n_lines, uint64_t max_pow)
    : _n(static_cast<double>(n_lines)),
      _logK(std::log((_n - 1.0) / _n)),
      _pow((_n - 1.0) / _n, max_pow),
      _log(n_lines)
{
    atl_assert(n_lines >= 2, "the model needs at least two cache lines");
}

double
FootprintModel::blocking(double s, uint64_t n) const
{
    return _n - (_n - s) * _pow.pow(n);
}

double
FootprintModel::independent(double s, uint64_t n) const
{
    return s * _pow.pow(n);
}

double
FootprintModel::dependent(double q, double s, uint64_t n) const
{
    double qn = q * _n;
    return qn - (qn - s) * _pow.pow(n);
}

double
FootprintModel::decayed(double s, uint64_t m_snap, uint64_t m_now) const
{
    atl_assert(m_now >= m_snap, "time runs forward");
    return independent(s, m_now - m_snap);
}

AssociativeFootprintModel::AssociativeFootprintModel(uint64_t n_lines,
                                                     unsigned ways,
                                                     uint64_t max_pow)
    : _n(static_cast<double>(n_lines)),
      // A sleeping thread's lines age toward LRU, so within a selected
      // set they are roughly 2W/(W+1) times more likely than uniform to
      // be the victim. At W=1 this reduces exactly to the direct-mapped
      // base (N-1)/N.
      _pow(1.0 - (2.0 * ways / (ways + 1.0)) / static_cast<double>(n_lines),
           max_pow)
{
    atl_assert(ways >= 1, "associativity must be at least 1");
    atl_assert(n_lines > 2 * ways, "cache too small for this model");
}

double
AssociativeFootprintModel::independent(double s, uint64_t n) const
{
    return s * _pow.pow(n);
}

double
AssociativeFootprintModel::blocking(double s, uint64_t n) const
{
    return std::min(_n, _n - (_n - s) * _pow.pow(n));
}

double
AssociativeFootprintModel::dependent(double q, double s, uint64_t n) const
{
    double qn = q * _n;
    double e = qn - (qn - s) * _pow.pow(n);
    return std::clamp(e, 0.0, _n);
}

} // namespace atl
