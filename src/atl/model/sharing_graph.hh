/**
 * @file
 * The shared-state dependency graph G = (V, E) induced by at_share()
 * annotations (paper Section 2.3).
 *
 * Nodes are runtime thread instances; a weighted arc (t_i, t_j) with
 * sharing coefficient q in [0, 1] states that fraction q of the lines
 * thread t_i brings into a cache also belong to the state of thread t_j
 * ("the cached state of t_j depends on activity of t_i"). The graph is
 * built dynamically as annotations execute; re-annotating an existing
 * arc changes its weight; unspecified arcs have coefficient 0; no
 * transitivity is assumed and arcs need not be bidirectional.
 *
 * Annotations are hints: out-of-range coefficients are clamped with a
 * warning rather than rejected, because incorrect annotations must never
 * affect correctness.
 */

#ifndef ATL_MODEL_SHARING_GRAPH_HH
#define ATL_MODEL_SHARING_GRAPH_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "atl/mem/address.hh"

namespace atl
{

/** One outgoing dependency arc. */
struct SharingEdge
{
    /** Dependent thread (arc destination). */
    ThreadId dest;
    /** Sharing coefficient q in [0, 1]. */
    double q;
};

/**
 * Directed weighted sharing graph with O(1) amortised edge update and
 * O(out-degree) iteration, the two operations the scheduler needs on its
 * context-switch fast path.
 */
class SharingGraph
{
  public:
    /**
     * Add or update the arc (src -> dst) with coefficient q.
     * A coefficient of exactly 0 removes the arc (it is semantically
     * identical to an unspecified arc). Values outside [0, 1] are
     * clamped with a warning. Self-arcs are ignored: a thread trivially
     * shares all of its state with itself and the model's blocking-thread
     * case already covers it.
     */
    void share(ThreadId src, ThreadId dst, double q);

    /** Coefficient of (src -> dst); 0 when unspecified. */
    double coefficient(ThreadId src, ThreadId dst) const;

    /** Outgoing arcs of src (threads dependent on src). */
    const std::vector<SharingEdge> &outEdges(ThreadId src) const;

    /** Out-degree of src (the d in the O(d) context-switch bound). */
    size_t outDegree(ThreadId src) const;

    /**
     * Drop every arc incident to a terminated thread. Called when a
     * thread is reaped so the graph does not grow without bound over
     * millions of short-lived threads.
     */
    void removeThread(ThreadId tid);

    /** Total number of arcs currently in the graph. */
    size_t edgeCount() const { return _edgeCount; }

    /** Number of threads with at least one incident arc. */
    size_t nodeCount() const { return _nodes.size(); }

    /** Out-of-range coefficients clamped so far (warnings are only
     *  emitted for the first few). */
    uint64_t clampCount() const { return _clampWarnings; }

  private:
    struct Node
    {
        std::vector<SharingEdge> out;
        /** Sources of arcs pointing at this thread, for O(in-degree)
         *  cleanup in removeThread. */
        std::vector<ThreadId> inSources;
    };

    /** Find an arc within a node's out list; -1 when absent. */
    static int findEdge(const Node &node, ThreadId dst);

    std::unordered_map<ThreadId, Node> _nodes;
    size_t _edgeCount = 0;
    uint64_t _clampWarnings = 0;
};

} // namespace atl

#endif // ATL_MODEL_SHARING_GRAPH_HH
