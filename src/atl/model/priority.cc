#include "atl/model/priority.hh"

#include "atl/util/logging.hh"

namespace atl
{

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::FCFS: return "FCFS";
      case PolicyKind::LFF: return "LFF";
      case PolicyKind::CRT: return "CRT";
    }
    return "?";
}

PriorityScheme::PriorityScheme(PolicyKind kind, const FootprintModel &model)
    : _kind(kind), _model(model)
{
    atl_assert(kind != PolicyKind::FCFS,
               "FCFS does not use a priority scheme");
}

void
PriorityScheme::initialise(FootprintRecord &rec, uint64_t m_now) const
{
    rec.s = 0.0;
    rec.mSnap = m_now;
    rec.logF0 = 0.0;
    // log of an empty footprint clamps to log(1) = 0 in both schemes.
    rec.priority = -(static_cast<double>(m_now) * _model.logK());
}

void
PriorityScheme::beginSwitch(uint64_t m_now)
{
    _mNow = m_now;
    // The -m(t) log k term is shared by every update in this switch:
    // computed once (1 mul), reused for free afterwards.
    _mLogK = static_cast<double>(m_now) * _model.logK();
    _ops.charge(1);
}

void
PriorityScheme::updateBlocking(FootprintRecord &rec, uint64_t n)
{
    atl_assert(_mNow >= n, "interval longer than processor history");

    // Collapse any lazy decay between the record's snapshot and the
    // start of this scheduling interval. For the thread that just ran
    // this is a no-op: materialise() pinned the record at dispatch. A
    // record *newer* than the interval start belongs to a thread
    // created mid-interval: only the misses since its birth affect it.
    uint64_t m_t0 = _mNow - n;
    if (rec.mSnap > m_t0) {
        n = _mNow - rec.mSnap;
    } else if (rec.mSnap < m_t0) {
        rec.s *= _model.kPow(m_t0 - rec.mSnap);
        _ops.charge(1);
    }

    // E[F_A] = N - (N - S) k^n : sub, mul, sub.
    double n_lines = _model.N();
    rec.s = n_lines - (n_lines - rec.s) * _model.kPow(n);
    _ops.charge(3);
    rec.mSnap = _mNow;

    if (_kind == PolicyKind::LFF) {
        // p = log E[F] - m log k : one subtraction (log is a lookup).
        rec.priority = _model.logF(rec.s) - _mLogK;
        _ops.charge(1);
    } else {
        // CRT: the thread just ran, so E[F_last_run] := E[F] and the two
        // log terms cancel: p = -m log k. Remember log E[F_last_run] for
        // later dependent updates.
        rec.logF0 = _model.logF(rec.s);
        rec.priority = 0.0 - _mLogK;
        _ops.charge(1);
    }
}

void
PriorityScheme::holdBlocking(FootprintRecord &rec)
{
    // The quiet-phase misses replaced the thread's own lines with its
    // own lines: footprint unchanged, snapshot moved to now.
    rec.mSnap = _mNow;
    if (_kind == PolicyKind::LFF) {
        rec.priority = _model.logF(rec.s) - _mLogK;
        _ops.charge(1);
    } else {
        rec.logF0 = _model.logF(rec.s);
        rec.priority = 0.0 - _mLogK;
        _ops.charge(1);
    }
}

void
PriorityScheme::updateDependent(FootprintRecord &rec, double q, uint64_t n)
{
    atl_assert(_mNow >= n, "interval longer than processor history");

    // A record newer than the interval start belongs to a dependent
    // *created during* the interval by the blocking thread itself
    // (records are only ever initialised on a processor its creator is
    // occupying). Its state was empty at creation and everything the
    // creator fetched for it during the whole interval counts, so the
    // record rewinds to the interval start with its (empty) footprint
    // unchanged.
    uint64_t m_t0 = _mNow - n;
    if (rec.mSnap > m_t0) {
        rec.mSnap = m_t0;
    } else if (rec.mSnap < m_t0) {
        rec.s *= _model.kPow(m_t0 - rec.mSnap);
        _ops.charge(1);
    }

    // E[F_C] = qN - (qN - S) k^n : mul, sub, mul, sub.
    double qn = q * _model.N();
    rec.s = qn - (qn - rec.s) * _model.kPow(n);
    _ops.charge(4);
    rec.mSnap = _mNow;

    if (_kind == PolicyKind::LFF) {
        rec.priority = _model.logF(rec.s) - _mLogK;
        _ops.charge(1);
    } else {
        // p = log E[F] - log E[F_last_run] - m log k : two subtractions.
        rec.priority = _model.logF(rec.s) - rec.logF0 - _mLogK;
        _ops.charge(2);
    }
}

void
PriorityScheme::materialise(FootprintRecord &rec, uint64_t m_now)
{
    atl_assert(rec.mSnap <= m_now, "record from the future");
    if (rec.mSnap < m_now) {
        rec.s *= _model.kPow(m_now - rec.mSnap);
        _ops.charge(1);
        rec.mSnap = m_now;
    }
}

double
PriorityScheme::expectedFootprint(const FootprintRecord &rec,
                                  uint64_t m_now) const
{
    return _model.decayed(rec.s, rec.mSnap, m_now);
}

} // namespace atl
