/**
 * @file
 * The cache/thread tracer: the reproduction of the paper's Shade-based
 * simulator instrumentation (Section 3). The hardware counters alone
 * lose the association between cache lines and threads; the tracer
 * preserves it by watching every E-cache fill and eviction and mapping
 * the line back (through the simulated VM) to the threads whose
 * registered state contains it. This yields ground-truth per-thread
 * footprints to compare against the analytical model's predictions.
 *
 * Workloads register each thread's state regions explicitly (the Shade
 * setup knew thread state layouts the same way, via the Active Threads
 * context-switch hooks). Regions may overlap: a shared line counts
 * toward every owner's footprint.
 */

#ifndef ATL_SIM_TRACER_HH
#define ATL_SIM_TRACER_HH

#include <array>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "atl/runtime/machine.hh"

namespace atl
{

/**
 * Ground-truth footprint observer. Installs itself as the machine's
 * MemoryObserver on construction.
 */
class Tracer : public MemoryObserver
{
  public:
    /** @param machine the machine to observe (must outlive the tracer) */
    explicit Tracer(Machine &machine);
    ~Tracer() override;

    /**
     * Declare that [va, va+bytes) belongs to a thread's state. Line
     * granularity is the E-cache line size; partially covered lines
     * count as owned.
     */
    void registerState(ThreadId tid, VAddr va, uint64_t bytes);

    /** Observed footprint (lines) of a thread in a processor's E-cache. */
    uint64_t footprint(ThreadId tid, CpuId cpu) const;

    /** Registered state size of a thread, in E-cache lines. */
    uint64_t stateLines(ThreadId tid) const;

    /**
     * Fraction of thread a's registered state that is also registered to
     * thread b: the paper's sharing coefficient q_{a,b}, inferred from
     * layout instead of user annotation (Section 7 direction).
     * @return |state_a intersect state_b| / |state_a|, 0 when a has none
     */
    double overlap(ThreadId a, ThreadId b) const;

    /**
     * Annotate the machine's sharing graph automatically from registered
     * region overlap: for every ordered pair of threads with overlap at
     * least min_q, emit at_share(a, b, overlap(a, b)).
     * @param min_q ignore weaker overlaps to keep the graph sparse
     * @return number of arcs written
     */
    size_t inferAnnotations(double min_q = 0.05);

    /**
     * Infer continuously: every subsequent registerState() compares the
     * new region's owners against the registering thread and refreshes
     * the sharing arcs between them (the paper's Section 7 direction —
     * "identify state sharing patterns entirely at runtime" — driven by
     * state layout instead of user intervention). Cost is proportional
     * to the number of co-owners of the registered lines.
     * @param min_q arcs weaker than this are not emitted
     */
    void enableAutoInference(double min_q = 0.05);

    /** Install a demand-miss callback (cpu, thread). */
    void
    setMissCallback(std::function<void(CpuId, ThreadId)> cb)
    {
        _missCallback = std::move(cb);
    }

    /** @name MemoryObserver interface @{ */
    void onL2Fill(CpuId cpu, PAddr line_addr) override;
    void onL2Evict(CpuId cpu, PAddr line_addr) override;
    void onL2Replace(CpuId cpu, PAddr fill_addr,
                     PAddr victim_addr) override;
    void onEMiss(CpuId cpu, ThreadId tid) override;
    /** @} */

  private:
    /**
     * Hot half of one virtual line's owner set: a 16-byte POD holding
     * the owner count and the first few owner ids inline. Regions
     * usually overlap 0-3 threads, so the fill/evict hot path reads one
     * 16-byte record from a flat array — no pointers, no hash lookups,
     * and the whole table is memmove-able when the bump base shifts.
     * Wider sharing (count > kInline) spills the *remaining* owners
     * into the cold per-vline map, touched only for those rare lines.
     */
    struct HotOwners
    {
        /** Inline capacity before spilling (covers the usual 0-3). */
        static constexpr unsigned kInline = 3;

        uint32_t count = 0;
        std::array<ThreadId, kInline> own{};
    };
    static_assert(sizeof(HotOwners) == 16,
                  "hot owner record must stay one 16-byte load");

    /** True when tid already owns the vline behind `hot`. */
    bool ownersContain(const HotOwners &hot, uint64_t vline,
                       ThreadId tid) const;

    /** Append an owner (caller checks ownersContain() first). */
    void ownersAdd(HotOwners &hot, uint64_t vline, ThreadId tid);

    /** Invoke f(tid) for every owner, inline ids first then spill in
     *  insertion order (the order the old AoS layout produced). */
    template <typename F>
    void
    ownersForEach(const HotOwners &hot, uint64_t vline, F f) const
    {
        unsigned n = hot.count < HotOwners::kInline ? hot.count
                                                    : HotOwners::kInline;
        for (unsigned i = 0; i < n; ++i)
            f(hot.own[i]);
        if (hot.count > HotOwners::kInline) {
            auto it = _spill.find(vline);
            for (ThreadId t : it->second)
                f(t);
        }
    }

    /** Resolve a physical line to its virtual line number, if mapped. */
    bool vlineOf(PAddr pa, uint64_t &vline) const;

    /** Hot owner record of a vline, or null when none was registered. */
    const HotOwners *ownersAt(uint64_t vline) const;

    /** Hot owner record of a vline, growing the table to cover it. */
    HotOwners &ownersGrow(uint64_t vline);

    /** Footprint counter of (tid, cpu), ensuring allocation. */
    uint64_t &counter(ThreadId tid, CpuId cpu);

    /**
     * One processor's footprint counters, indexed by thread id and
     * cache-line aligned. Fill/evict events for a processor fire only
     * on the host worker driving it (or on the single engine thread),
     * so per-processor shards make the hot counters private: no false
     * sharing between adjacent processors' counts, and growing one
     * processor's vector never moves another's out from under a
     * concurrent reader (the flat tid*numCpus+cpu layout used before
     * reallocated every processor's counters on any growth).
     */
    struct alignas(64) CpuFootprints
    {
        std::vector<uint64_t> counts; ///< lines resident, by thread id
    };

    Machine &_machine;
    uint64_t _lineBytes;
    /** log2(_lineBytes): the hot path shifts, never divides. */
    unsigned _lineShift;
    unsigned _numCpus;
    /** Hot owner records indexed by (vline - _ownerBase); the bump
     *  allocator hands out dense addresses, so the table stays
     *  compact. */
    std::vector<HotOwners> _owners;
    uint64_t _ownerBase = 0;
    /** Cold spill: owners beyond HotOwners::kInline, keyed by absolute
     *  vline so base shifts never rekey it. */
    std::unordered_map<uint64_t, std::vector<ThreadId>> _spill;
    std::unordered_map<ThreadId,
                       std::vector<std::pair<uint64_t, uint64_t>>>
        _regions; ///< per-thread [first, last] vline intervals
    /** Per-processor footprint counter shards. */
    std::vector<CpuFootprints> _footprints;
    std::function<void(CpuId, ThreadId)> _missCallback;
    bool _autoInfer = false;
    double _autoInferMinQ = 0.05;
};

} // namespace atl

#endif // ATL_SIM_TRACER_HH
