/**
 * @file
 * Experiment harness: runs a workload on a configured machine and
 * collects the metrics the paper reports (E-cache misses, relative
 * performance, scheduling overhead), plus the footprint monitor used to
 * regenerate the model-accuracy figures (4, 5, 6, 7) by sampling
 * observed versus predicted footprints as a computation unfolds.
 */

#ifndef ATL_SIM_EXPERIMENT_HH
#define ATL_SIM_EXPERIMENT_HH

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "atl/runtime/scheduler.hh"
#include "atl/sim/tracer.hh"
#include "atl/workloads/workload.hh"

namespace atl
{

class EventLog;
class MetricsRegistry;

/** Headline metrics of one workload run. */
struct RunMetrics
{
    std::string workload;
    PolicyKind policy = PolicyKind::FCFS;
    unsigned numCpus = 1;
    Cycles makespan = 0;
    uint64_t eMisses = 0;
    uint64_t eRefs = 0;
    uint64_t instructions = 0;
    uint64_t contextSwitches = 0;
    Cycles schedOverheadCycles = 0;
    bool verified = false;
    /** Graceful-degradation counters of the run (all zero on a clean
     *  run; compared by operator== so fault-free runs must match the
     *  pre-degradation baseline bit for bit). */
    DegradationStats degradation;

    /** @name Host-side diagnostics.
     * Simulator throughput, not simulation results: excluded from
     * operator== so batched and scalar runs of the same workload
     * compare equal whenever the modelled state is bit-identical. @{ */
    /** Modelled references issued (after run/line expansion). */
    uint64_t refsIssued = 0;
    /** Reference calls taken by the machine (blocks + scalar calls). */
    uint64_t refBlocks = 0;
    /** Wall-clock seconds spent inside machine.run(). */
    double hostSeconds = 0.0;
    /** @} */

    /** E-cache misses per 1000 instructions. */
    double mpki() const;

    /** Host reference throughput (refs/sec of wall-clock time). */
    double refsPerSec() const;

    /** Mean references per machine reference call (block occupancy). */
    double batchOccupancy() const;

    /** Field-wise equality (serial/parallel determinism checks). */
    bool operator==(const RunMetrics &other) const;
    bool operator!=(const RunMetrics &other) const
    {
        return !(*this == other);
    }

    /** Fraction of baseline misses eliminated by this run. */
    static double missesEliminated(const RunMetrics &base,
                                   const RunMetrics &opt);

    /** Speedup of this run over a baseline (makespan ratio). */
    static double speedup(const RunMetrics &base, const RunMetrics &opt);
};

/**
 * Build a machine with the given config, run the workload to
 * completion, verify it, and collect metrics.
 *
 * @param workload the application (setup() is called once)
 * @param config machine configuration
 * @param trace attach a tracer (needed only when the workload registers
 *        state or when footprints are observed)
 * @param batch_refs issue modelled references through the block-issue
 *        pipeline (false replays the same stream scalar-by-scalar;
 *        metrics are bit-identical either way)
 */
RunMetrics runWorkload(Workload &workload, const MachineConfig &config,
                       bool trace = false, bool batch_refs = true);

/** One observed-vs-predicted footprint sample. */
struct FootprintSample
{
    /** Driver-thread E-misses since tracking began. */
    uint64_t misses = 0;
    /** Driver-thread instructions since tracking began. */
    uint64_t instructions = 0;
    /** Ground-truth footprint from the tracer, in lines. */
    double observed = 0.0;
    /** Closed-form model prediction, in lines. */
    double predicted = 0.0;
};

/**
 * Samples footprints of a set of threads while one designated "driver"
 * thread executes on a processor, reproducing the paper's simulation
 * methodology: the driver's misses are the model's n, and each tracked
 * thread is predicted with the model case matching its relation to the
 * driver (the driver itself: blocking; disjoint sleepers: independent;
 * sharers: dependent with coefficient q).
 */
class FootprintMonitor
{
  public:
    /** Relation of a tracked thread to the driver. */
    enum class Kind
    {
        Executing,   ///< the driver itself (blocking-thread case)
        Independent, ///< no shared state with the driver
        Dependent,   ///< shares fraction q of state with the driver
    };

    /**
     * @param machine the running machine
     * @param tracer ground-truth source (also provides the miss hook)
     * @param cpu processor whose cache is observed
     * @param sample_every record one sample per this many driver misses
     */
    FootprintMonitor(Machine &machine, Tracer &tracer, CpuId cpu = 0,
                     uint64_t sample_every = 64);

    /** Detaches the miss callback from the tracer. */
    ~FootprintMonitor();

    FootprintMonitor(const FootprintMonitor &) = delete;
    FootprintMonitor &operator=(const FootprintMonitor &) = delete;

    /**
     * Set the driver thread and reset its miss/instruction baselines.
     * Call after the cache state to be studied is in place (e.g. after a
     * flush).
     */
    void setDriver(ThreadId tid);

    /**
     * Track a thread. Its current observed footprint becomes the model's
     * S (initial footprint).
     * @param q sharing coefficient, used when kind is Dependent
     */
    void track(ThreadId tid, Kind kind, double q = 0.0);

    /** Samples recorded for a tracked thread. */
    const std::vector<FootprintSample> &samples(ThreadId tid) const;

    /**
     * Mean absolute relative error of prediction vs observation for a
     * tracked thread, ignoring samples with observed < floor lines.
     * @param excluded when non-null, receives the number of samples the
     *        floor rejected, so callers can tell a genuinely accurate
     *        prediction from one computed over almost no data
     */
    double meanAbsRelError(ThreadId tid, double floor = 32.0,
                           size_t *excluded = nullptr) const;

  private:
    struct Target
    {
        Kind kind;
        double q;
        double s0;
        std::vector<FootprintSample> samples;
    };

    /** Tracer miss callback. */
    void onMiss(CpuId cpu, ThreadId tid);

    /** Record one sample per target. */
    void sampleAll();

    /** Record one sample for one target. */
    void sample(ThreadId tid, Target &target, uint64_t instr);

    Machine &_machine;
    Tracer &_tracer;
    /** Machine's event log, cached at construction (null when telemetry
     *  is off); every sample doubles as a Residual telemetry event. */
    EventLog *_telemetry = nullptr;
    /** Machine's metrics registry, cached at construction (null when
     *  metrics are off); the running residual MARE is published as the
     *  "model.residual_mare" gauge on shard _cpu after every sample —
     *  the same floor-filtered figure meanAbsRelError(driver) reports
     *  at its default floor, kept live instead of recomputed. */
    MetricsRegistry *_metrics = nullptr;
    /** "model.residual_mare" gauge handle. */
    uint32_t _mareGauge = 0;
    /** Running |pred-obs|/obs accumulation behind the gauge. */
    double _residualSum = 0.0;
    uint64_t _residualUsed = 0;
    CpuId _cpu;
    uint64_t _sampleEvery;
    /** Atomic because under the epoch engine the miss callback fires on
     *  whichever host worker drives the missing processor, while the
     *  driver designation is written from the workload's own worker;
     *  misses on other processors must be filterable without a race.
     *  Monitor state beyond this guard is only touched for misses on
     *  _cpu, which a single worker drives. */
    std::atomic<ThreadId> _driver{InvalidThreadId};
    uint64_t _driverMisses = 0;
    uint64_t _instrBaseline = 0;
    std::unordered_map<ThreadId, Target> _targets;
    /**
     * The driver's own tracking entry, when the driver is tracked.
     * unordered_map never moves its nodes, so the pointer survives later
     * track() insertions; it is refreshed from the map only on the
     * invalidating changes — a driver switch or the driver's own entry
     * being (re)tracked. Keeps the per-sample path of the common
     * "monitor the executing thread" setup off the hash table.
     */
    Target *_driverTarget = nullptr;
};

} // namespace atl

#endif // ATL_SIM_EXPERIMENT_HH
