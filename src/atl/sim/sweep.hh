/**
 * @file
 * Parallel sweep engine for the experiment matrix. Every bench in this
 * repo is a set of *independent* runWorkload() calls — each one builds
 * its own Machine, so nothing is shared between runs — which makes the
 * sweeps embarrassingly parallel. SweepRunner executes such jobs on a
 * small thread pool while keeping results bit-identical to serial
 * execution: determinism comes from each job's self-contained machine
 * seed (see deriveSeed), never from execution order, and results are
 * collected by job index.
 *
 * BenchReport is the companion output side: it accumulates a bench's
 * configuration and per-run metrics into a JSON document and writes it
 * to the results directory, so sweeps feed tooling instead of only
 * terminals.
 */

#ifndef ATL_SIM_SWEEP_HH
#define ATL_SIM_SWEEP_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "atl/sim/experiment.hh"
#include "atl/util/json.hh"

namespace atl
{

/** One independent simulation of a sweep. */
struct SweepJob
{
    /** Label used in error reports. */
    std::string name;
    /** The run. Must be self-contained: builds its own Machine and
     *  touches no state shared with other jobs. */
    std::function<RunMetrics()> body;
};

/**
 * Fixed-size worker pool executing sweep jobs. Worker count resolution:
 * an explicit constructor argument wins, else the ATL_SWEEP_JOBS
 * environment variable, else the hardware concurrency. A count of 1
 * runs everything inline on the caller (no threads), which the
 * determinism tests use as the serial reference.
 */
class SweepRunner
{
  public:
    /** @param jobs worker count; 0 resolves via defaultJobs() */
    explicit SweepRunner(unsigned jobs = 0);

    /** Resolved worker count. */
    unsigned jobs() const { return _jobs; }

    /**
     * Run every job and return their metrics in job order (independent
     * of which worker finished first). The first exception thrown by
     * any job is rethrown here after all workers stop.
     */
    std::vector<RunMetrics> run(const std::vector<SweepJob> &sweep);

    /**
     * Generic parallel for: invoke fn(i) for every i in [0, n), spread
     * over the pool. fn must only write state owned by index i.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Mix a base seed with a job index (splitmix64 finaliser), so every
     * job of a sweep gets an independent, reproducible machine seed
     * that does not depend on scheduling.
     */
    static uint64_t deriveSeed(uint64_t base, uint64_t index);

    /** Worker count from ATL_SWEEP_JOBS or the hardware, at least 1. */
    static unsigned defaultJobs();

  private:
    unsigned _jobs;
};

/** Wall-clock stopwatch for bench timing lines. */
class WallTimer
{
  public:
    WallTimer() : _start(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    seconds() const
    {
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - _start;
        return dt.count();
    }

    void restart() { _start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point _start;
};

/**
 * Machine-readable bench output: a JSON document with the bench name,
 * free-form configuration fields, and an array of per-run metrics.
 * write() places it at <results dir>/<bench name>.json, where the
 * results directory is $ATL_RESULTS_DIR or "results".
 */
class BenchReport
{
  public:
    /** @param bench_name document name, also the output file stem */
    explicit BenchReport(std::string bench_name);

    /** Set a top-level configuration field. */
    void set(const std::string &key, Json value);

    /** Append one run's metrics to the runs array. */
    void addRun(const RunMetrics &metrics);

    /** Serialise RunMetrics to a JSON object. */
    static Json toJson(const RunMetrics &metrics);

    /**
     * Rebuild RunMetrics from toJson() output.
     * @retval false when required fields are missing or malformed
     */
    static bool fromJson(const Json &json, RunMetrics &out);

    /** The accumulated document. */
    const Json &document() const { return _doc; }

    /** Results directory ($ATL_RESULTS_DIR or "results"). */
    static std::string resultsDir();

    /**
     * Write the document to the results directory, creating it as
     * needed.
     * @return the path written
     */
    std::string write() const;

  private:
    std::string _name;
    Json _doc;
};

} // namespace atl

#endif // ATL_SIM_SWEEP_HH
