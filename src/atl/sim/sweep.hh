/**
 * @file
 * Parallel sweep engine for the experiment matrix. Every bench in this
 * repo is a set of *independent* runWorkload() calls — each one builds
 * its own Machine, so nothing is shared between runs — which makes the
 * sweeps embarrassingly parallel. SweepRunner executes such jobs on a
 * small thread pool while keeping results bit-identical to serial
 * execution: determinism comes from each job's self-contained machine
 * seed (see deriveSeed), never from execution order, and results are
 * collected by job index.
 *
 * BenchReport is the companion output side: it accumulates a bench's
 * configuration and per-run metrics into a JSON document and writes it
 * to the results directory, so sweeps feed tooling instead of only
 * terminals.
 */

#ifndef ATL_SIM_SWEEP_HH
#define ATL_SIM_SWEEP_HH

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "atl/sim/experiment.hh"
#include "atl/util/json.hh"

namespace atl
{

class EventLog;
class FaultInjector;
class MetricsRegistry;
class SweepJournal;

/** One independent simulation of a sweep. */
struct SweepJob
{
    /** Label used in error reports. */
    std::string name;
    /** The run. Must be self-contained: builds its own Machine and
     *  touches no state shared with other jobs. */
    std::function<RunMetrics()> body;
    /** Optional seed-parameterised variant: when set it is preferred
     *  over body, and each retry attempt receives a fresh seed derived
     *  from (SweepOptions::retrySeedBase, job index, attempt) — so a
     *  run wedged by one unlucky seed can succeed on the next. */
    std::function<RunMetrics(uint64_t seed)> seededBody = nullptr;
    /** Event log this job's body records into (owned by the caller,
     *  wired into the job's MachineConfig by the body itself). Jobs
     *  must not share a log. When set, runCollect() prints the
     *  atl-trace-summary block for the job after the sweep. */
    EventLog *trace = nullptr;
    /** Metrics registry this job's body accumulates into (owned by the
     *  caller, wired into the job's MachineConfig by the body itself).
     *  Jobs must not share a registry — two concurrent cells would
     *  contend for the same shards. When set: under SweepOptions::
     *  isolate the forked child marshals the registry snapshot back
     *  and the engine merges it here (a crashed attempt's updates are
     *  discarded with the child); journalled sweeps persist the
     *  snapshot in the cell's done-record and restore it on resume.
     *  After the sweep, callers fold per-job registries together in
     *  job order (the merge is order-independent anyway). */
    MetricsRegistry *metrics = nullptr;
};

/** Failure-handling knobs for a sweep. Defaults reproduce the classic
 *  behaviour: one attempt, no timeout. */
struct SweepOptions
{
    /** Attempts per job (>= 1). Retries only help jobs with a
     *  seededBody; a plain body is deterministic and simply re-runs —
     *  unless it crashes or times out under isolation, where a retry
     *  gets a fresh child. */
    unsigned maxAttempts = 1;
    /** Per-attempt wall-clock timeout in seconds; 0 disables. A timed
     *  out attempt counts as a failure (and may be retried). Under
     *  isolate the wedged child is SIGKILLed and reaped, really
     *  reclaiming the attempt; in-process the abandoned attempt's host
     *  thread is left to finish detached — C++ cannot kill it — so
     *  in-process timeouts are for surviving stragglers only. */
    double timeoutSeconds = 0.0;
    /** Base seed mixed into retry seeds for seededBody jobs (and into
     *  the backoff jitter). */
    uint64_t retrySeedBase = 0;
    /** Added to each job's index when deriving per-attempt seeds and
     *  backoff jitter. The sweep fabric runs cell i of a larger sweep
     *  as a single-job sub-sweep inside a worker process; offsetting
     *  the index makes that sub-sweep reproduce exactly the seeds the
     *  serial sweep would have used for cell i — the fabric's
     *  bit-identity invariant for seeded jobs. 0 (the default) keeps
     *  classic behaviour. */
    uint64_t seedIndexOffset = 0;
    /** Run each attempt in a forked child (see sim/supervisor.hh):
     *  SIGSEGV / abort / silent _exit / OOM-kill in a job become an
     *  ordinary SweepJobFailure instead of killing the sweep. false
     *  keeps the classic in-process path, bit-identical to before the
     *  supervisor existed. */
    bool isolate = false;
    /** First retry delay in milliseconds; 0 disables backoff. Attempt
     *  k waits backoffBaseMs * 2^(k-1), capped at backoffMaxMs and
     *  scaled by a seeded jitter factor in [0.5, 1.5) so synchronized
     *  retries of many jobs spread out deterministically. */
    double backoffBaseMs = 0.0;
    /** Backoff ceiling per retry, in milliseconds. */
    double backoffMaxMs = 2000.0;
    /** Durable journal (owned by the caller). When set, completed cells
     *  recorded by a previous interrupted/crashed run of the same sweep
     *  shape are replayed instead of re-run, every transition is
     *  fsync'd as it happens, and a fully-clean sweep removes the
     *  journal file. */
    SweepJournal *journal = nullptr;
    /** Configuration fingerprint folded into the journal's config
     *  hash. Job names alone key only the sweep's *shape*; anything
     *  else that changes a cell's metrics — workload parameters,
     *  MachineConfig, policy tuning, fault plan and seeds — must be
     *  serialised into this string (any stable text form), or a
     *  journal from a run with different parameters would silently
     *  replay its stale metrics as current results. Ignored without a
     *  journal. */
    std::string configFingerprint;
    /** Sweep-level telemetry (owned by the caller, distinct from any
     *  per-job log): crash, retry and journal-resume transitions are
     *  recorded as SweepCrash/SweepRetry/SweepResume events. */
    EventLog *telemetry = nullptr;
    /** Sweep-level *host* metrics (owned by the caller, distinct from
     *  any per-job registry): per-cell wall/CPU time histograms
     *  (sweep.cell_wall_us / sweep.cell_cpu_us), retry and backoff
     *  counters (sweep.retries / sweep.backoff_ms), and cell outcome
     *  counters (sweep.cells.{completed,failed,resumed}). These
     *  measure the *host*, so they are never bit-reproducible — keep
     *  them out of registries used for determinism comparisons. CPU
     *  time is the pool worker thread's (CLOCK_THREAD_CPUTIME_ID); an
     *  isolated child's cycles are spent in another process and show
     *  up only in the wall figure. */
    MetricsRegistry *metrics = nullptr;
    /** Fault-injection self-test knob: after this many completed jobs
     *  the sweep process raises SIGKILL against itself, simulating a
     *  hard mid-sweep crash (journal-resume smoke in check.sh --crash).
     *  0 disables. */
    unsigned selfKillAfter = 0;
    /** Mid-cell checkpoint cadence in simulated cycles (requires
     *  isolate): the supervised child forks a frozen copy-on-write
     *  holder at commit boundaries every this-many cycles, and a
     *  crashed/stalled/timed-out attempt resumes from its newest
     *  holder instead of re-running from cycle zero (see
     *  sim/supervisor.hh). 0 (the default) disables checkpointing and
     *  keeps the attempt protocol byte-identical to before it
     *  existed. */
    uint64_t checkpointCycles = 0;
    /** Checkpoint holders kept alive per attempt (newest N). */
    unsigned checkpointKeep = 2;
    /** Stall watchdog (requires isolate): kill an attempt whose
     *  progress beacons stop for this many seconds — a wedged cell,
     *  as opposed to a slow one — and attribute it stalled=true.
     *  0 disables. */
    double stallTimeoutSeconds = 0.0;
};

/**
 * Overlay environment knobs onto a base SweepOptions, so every bench
 * honours the same switches without per-bench plumbing:
 *   ATL_ISOLATE=1            run attempts in forked children
 *   ATL_SWEEP_TIMEOUT=<s>    per-attempt timeout, seconds
 *   ATL_SWEEP_ATTEMPTS=<n>   attempts per job
 *   ATL_SWEEP_BACKOFF_MS=<m> base retry backoff, milliseconds
 *   ATL_SWEEP_KILL_AFTER=<n> self-SIGKILL after n completed jobs
 *   ATL_CKPT_CYCLES=<c>      mid-cell checkpoint cadence, simulated
 *                            cycles (0/unset = off)
 *   ATL_CKPT_KEEP=<n>        checkpoint holders kept per attempt
 *   ATL_SWEEP_STALL_TIMEOUT=<s> stall watchdog, seconds (0/unset = off)
 * Journal attachment stays with the caller (it owns the object).
 */
SweepOptions sweepOptionsFromEnv(SweepOptions base = {});

/** What one failed sweep job looked like after its last attempt. */
struct SweepJobFailure
{
    /** Index in the submitted job vector. */
    size_t index = 0;
    /** SweepJob::name. */
    std::string name;
    /** what() of the last exception, or a timeout note. */
    std::string message;
    /** Attempts consumed. */
    unsigned attempts = 0;
    /** True when the last attempt timed out rather than threw. */
    bool timedOut = false;
    /** True when the last attempt's child died abnormally (killed by a
     *  signal, or a silent nonzero _exit). Only possible under
     *  SweepOptions::isolate. */
    bool crashed = false;
    /** Signal that killed the last attempt's child (0 = none). */
    int exitSignal = 0;
    /** Nonzero exit status of the last attempt's child (0 = none). */
    int exitCode = 0;
    /** Total milliseconds spent in retry backoff across attempts. */
    uint64_t attemptsBackoffMs = 0;
    /** The stall watchdog killed the last attempt (progress beacons
     *  stopped; distinct from the wall-clock timeout). */
    bool stalled = false;
    /** Checkpoint resumes consumed across the job's attempts — the
     *  cell failed anyway (resume budget or holder chain exhausted). */
    uint64_t checkpointResumes = 0;
    /** Simulated cycle of the last attempt's newest resume (0 when it
     *  never resumed). */
    uint64_t resumedFromCycle = 0;
};

/**
 * Thrown by run()/forEach() when jobs failed: carries *every* job
 * failure, not just the first. Derives from std::runtime_error so
 * pre-existing catch sites keep working; what() summarises all
 * failures.
 */
class SweepFailure : public std::runtime_error
{
  public:
    explicit SweepFailure(std::vector<SweepJobFailure> failures);

    /** All failures, ordered by job index. */
    const std::vector<SweepJobFailure> &failures() const
    {
        return _failures;
    }

  private:
    std::vector<SweepJobFailure> _failures;
};

/**
 * Everything a sweep produced, failures included. results keeps one
 * slot per job (failed slots hold default-constructed RunMetrics) so
 * positional table code survives partial sweeps; ok flags tell the
 * slots apart.
 */
struct SweepOutcome
{
    /** Per-job metrics, in job order; meaningful where ok[i] != 0. */
    std::vector<RunMetrics> results;
    /** Per-job success flags, in job order. */
    std::vector<uint8_t> ok;
    /** Per-job replay flags: 1 when the cell's metrics came from the
     *  journal of a previous run instead of executing. */
    std::vector<uint8_t> resumed;
    /** Failures, ordered by job index; empty on a clean sweep. */
    std::vector<SweepJobFailure> failures;
    /** SIGINT/SIGTERM arrived mid-sweep: jobs not yet started were
     *  skipped (their ok stays 0 with no failure entry). */
    bool interrupted = false;
    /** Mid-cell checkpoint resumes across every cell and attempt
     *  (schema 8): times a crashed/stalled/timed-out attempt continued
     *  from a forked holder instead of restarting. */
    uint64_t checkpointResumes = 0;
    /** Simulated cycles those resumes did *not* re-execute (the sum of
     *  resumed-from cycles — the work checkpointing salvaged). */
    uint64_t checkpointCyclesSaved = 0;

    /** True when every job succeeded. */
    bool complete() const { return failures.empty() && !interrupted; }

    /** Cells replayed from a journal instead of executed. */
    size_t resumedRuns() const
    {
        size_t n = 0;
        for (uint8_t r : resumed)
            n += r;
        return n;
    }
};

/**
 * Fixed-size worker pool executing sweep jobs. Worker count resolution:
 * an explicit constructor argument wins, else the ATL_SWEEP_JOBS
 * environment variable, else the hardware concurrency. A count of 1
 * runs everything inline on the caller (no threads), which the
 * determinism tests use as the serial reference.
 */
class SweepRunner
{
  public:
    /** @param jobs worker count; 0 resolves via defaultJobs() */
    explicit SweepRunner(unsigned jobs = 0);

    /** Resolved worker count. */
    unsigned jobs() const { return _jobs; }

    /**
     * Run every job and return their metrics in job order (independent
     * of which worker finished first). Jobs that fail do not stop the
     * pool — every job still runs — and afterwards a SweepFailure
     * carrying *all* job failures is thrown if there were any.
     */
    std::vector<RunMetrics> run(const std::vector<SweepJob> &sweep,
                                const SweepOptions &options = {});

    /**
     * Like run(), but failures are returned instead of thrown: the
     * outcome holds every surviving job's metrics in job order plus a
     * record of every failure, so a bench can report partial results
     * rather than lose the whole sweep to one bad cell.
     */
    SweepOutcome runCollect(const std::vector<SweepJob> &sweep,
                            const SweepOptions &options = {});

    /**
     * Generic parallel for: invoke fn(i) for every i in [0, n), spread
     * over the pool. fn must only write state owned by index i. Every
     * index runs even when some throw; the exceptions are then
     * collected into one SweepFailure (ordered by index).
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Mix a base seed with a job index (splitmix64 finaliser), so every
     * job of a sweep gets an independent, reproducible machine seed
     * that does not depend on scheduling.
     */
    static uint64_t deriveSeed(uint64_t base, uint64_t index);

    /** Worker count from ATL_SWEEP_JOBS or the hardware, at least 1. */
    static unsigned defaultJobs();

  private:
    unsigned _jobs;
};

/** Wall-clock stopwatch for bench timing lines. */
class WallTimer
{
  public:
    WallTimer() : _start(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    seconds() const
    {
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - _start;
        return dt.count();
    }

    void restart() { _start = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point _start;
};

/**
 * Machine-readable bench output: a JSON document with the bench name,
 * free-form configuration fields, and an array of per-run metrics.
 * write() places it at <results dir>/<bench name>.json, where the
 * results directory is $ATL_RESULTS_DIR or "results".
 */
class BenchReport
{
  public:
    /** @param bench_name document name, also the output file stem */
    explicit BenchReport(std::string bench_name);

    /** Set a top-level configuration field. */
    void set(const std::string &key, Json value);

    /** Append one run's metrics to the runs array. */
    void addRun(const RunMetrics &metrics);

    /** Record one failed job: clears the complete flag and appends an
     *  entry to the failed_runs array (schema 3). */
    void noteFailure(const SweepJobFailure &failure);

    /** Append a whole sweep outcome: successful runs via addRun (in
     *  job order), failures via noteFailure. */
    void noteOutcome(const SweepOutcome &outcome);

    /** Embed a merged metrics registry as the top-level "metrics"
     *  object (schema 7). Benches that compare reports across serial
     *  and fabric execution must embed only simulation-derived
     *  registries here — host-timing metrics differ run to run. */
    void noteMetrics(const MetricsRegistry &metrics);

    /** Serialise RunMetrics to a JSON object. */
    static Json toJson(const RunMetrics &metrics);

    /**
     * Rebuild RunMetrics from toJson() output.
     * @retval false when required fields are missing or malformed
     */
    static bool fromJson(const Json &json, RunMetrics &out);

    /** The accumulated document. */
    const Json &document() const { return _doc; }

    /** Results directory ($ATL_RESULTS_DIR or "results"). */
    static std::string resultsDir();

    /**
     * Write the document to the results directory, creating it as
     * needed. Failure to create the directory or write the file is
     * fatal (path and OS error reported): a bench that cannot persist
     * its report must fail loudly, not pass silently.
     * @return the path written
     */
    std::string write() const;

  private:
    std::string _name;
    Json _doc;
};

/**
 * Wrap each job's body so it suffers the injector's per-job fault
 * decision (throw or hang) before running. Decisions are drawn on the
 * calling thread, up front, so the injector needs no locking; they
 * depend only on (injector seed, job index).
 */
void injectJobFaults(std::vector<SweepJob> &jobs, FaultInjector &faults);

} // namespace atl

#endif // ATL_SIM_SWEEP_HH
