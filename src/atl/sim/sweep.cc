#include "atl/sim/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "atl/util/logging.hh"

namespace atl
{

SweepRunner::SweepRunner(unsigned jobs)
    : _jobs(jobs ? jobs : defaultJobs())
{
}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("ATL_SWEEP_JOBS")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        atl_warn("ignoring malformed ATL_SWEEP_JOBS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

uint64_t
SweepRunner::deriveSeed(uint64_t base, uint64_t index)
{
    // splitmix64 finaliser over base advanced by the golden-gamma; the
    // standard way to fan one seed out into independent streams.
    uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void
SweepRunner::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    size_t workers = std::min<size_t>(_jobs, n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto work = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                // Keep draining: stopping early would leave other
                // workers' in-flight jobs half-reported, and jobs are
                // independent anyway.
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        pool.emplace_back(work);
    work();
    for (std::thread &t : pool)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunMetrics>
SweepRunner::run(const std::vector<SweepJob> &sweep)
{
    std::vector<RunMetrics> results(sweep.size());
    forEach(sweep.size(), [&](size_t i) {
        atl_assert(sweep[i].body, "sweep job '", sweep[i].name,
                   "' has no body");
        results[i] = sweep[i].body();
    });
    return results;
}

BenchReport::BenchReport(std::string bench_name)
    : _name(std::move(bench_name)), _doc(Json::object())
{
    _doc["bench"] = Json(_name);
    _doc["schema"] = Json(2);
    _doc["runs"] = Json::array();
}

void
BenchReport::set(const std::string &key, Json value)
{
    _doc[key] = std::move(value);
}

void
BenchReport::addRun(const RunMetrics &metrics)
{
    _doc["runs"].push(toJson(metrics));
}

Json
BenchReport::toJson(const RunMetrics &metrics)
{
    Json json = Json::object();
    json["workload"] = Json(metrics.workload);
    json["policy"] = Json(policyName(metrics.policy));
    json["num_cpus"] = Json(static_cast<uint64_t>(metrics.numCpus));
    json["makespan"] = Json(metrics.makespan);
    json["e_misses"] = Json(metrics.eMisses);
    json["e_refs"] = Json(metrics.eRefs);
    json["instructions"] = Json(metrics.instructions);
    json["context_switches"] = Json(metrics.contextSwitches);
    json["sched_overhead_cycles"] = Json(metrics.schedOverheadCycles);
    json["verified"] = Json(metrics.verified);
    json["mpki"] = Json(metrics.mpki());
    // Host-side diagnostics (schema 2): simulator throughput and block
    // occupancy. Raw counts round-trip; the rates are derived views.
    json["refs_issued"] = Json(metrics.refsIssued);
    json["ref_blocks"] = Json(metrics.refBlocks);
    json["host_seconds"] = Json(metrics.hostSeconds);
    json["refs_per_sec"] = Json(metrics.refsPerSec());
    json["batch_occupancy"] = Json(metrics.batchOccupancy());
    return json;
}

bool
BenchReport::fromJson(const Json &json, RunMetrics &out)
{
    if (!json.isObject())
        return false;
    static const char *required[] = {
        "workload",       "policy",           "num_cpus",
        "makespan",       "e_misses",         "e_refs",
        "instructions",   "context_switches", "sched_overhead_cycles",
        "verified",       "refs_issued",      "ref_blocks",
    };
    for (const char *key : required) {
        if (!json.has(key))
            return false;
    }

    const std::string &policy = json.at("policy").asString();
    bool known = false;
    for (PolicyKind kind :
         {PolicyKind::FCFS, PolicyKind::LFF, PolicyKind::CRT}) {
        if (policy == policyName(kind)) {
            out.policy = kind;
            known = true;
            break;
        }
    }
    if (!known)
        return false;

    out.workload = json.at("workload").asString();
    out.numCpus = static_cast<unsigned>(json.at("num_cpus").asUint());
    out.makespan = json.at("makespan").asUint();
    out.eMisses = json.at("e_misses").asUint();
    out.eRefs = json.at("e_refs").asUint();
    out.instructions = json.at("instructions").asUint();
    out.contextSwitches = json.at("context_switches").asUint();
    out.schedOverheadCycles = json.at("sched_overhead_cycles").asUint();
    out.verified = json.at("verified").asBool();
    out.refsIssued = json.at("refs_issued").asUint();
    out.refBlocks = json.at("ref_blocks").asUint();
    if (json.has("host_seconds"))
        out.hostSeconds = json.at("host_seconds").asNumber();
    return true;
}

std::string
BenchReport::resultsDir()
{
    if (const char *env = std::getenv("ATL_RESULTS_DIR")) {
        if (*env)
            return env;
    }
    return "results";
}

std::string
BenchReport::write() const
{
    std::string dir = resultsDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        atl_warn("cannot create results dir '", dir, "': ",
                 ec.message());
        return {};
    }

    std::string path = dir + "/" + _name + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        atl_warn("cannot write '", path, "'");
        return {};
    }
    out << _doc.dump();
    return path;
}

} // namespace atl
