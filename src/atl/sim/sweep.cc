#include "atl/sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include <csignal>
#include <cstdio>
#include <ctime>

#include <fcntl.h>
#include <unistd.h>

#include "atl/fault/fault.hh"
#include "atl/obs/export.hh"
#include "atl/obs/metrics.hh"
#include "atl/sim/journal.hh"
#include "atl/sim/supervisor.hh"
#include "atl/util/logging.hh"

namespace atl
{

namespace
{

/** what() line for a SweepFailure: count plus the first few details. */
std::string
summariseFailures(const std::vector<SweepJobFailure> &failures)
{
    std::string msg =
        std::to_string(failures.size()) + " sweep job(s) failed:";
    size_t shown = 0;
    for (const SweepJobFailure &f : failures) {
        if (shown == 4) {
            msg += " ...";
            break;
        }
        msg += " [" + std::to_string(f.index) + " '" + f.name + "': " +
               (f.timedOut ? "timed out" : f.message) + "]";
        ++shown;
    }
    return msg;
}

/** Thread CPU time in microseconds (CLOCK_THREAD_CPUTIME_ID); 0 when
 *  the clock is unavailable. */
uint64_t
threadCpuMicros()
{
    timespec ts;
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
           static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
}

/** One attempt's result; metrics valid only when ok. */
struct AttemptResult
{
    bool ok = false;
    RunMetrics metrics;
    std::string message;
    bool timedOut = false;
    bool crashed = false;
    int exitSignal = 0;
    int exitCode = 0;
    bool stalled = false;
    uint64_t checkpointsTaken = 0;
    unsigned checkpointResumes = 0;
    uint64_t resumedFromCycle = 0;
    uint64_t checkpointCyclesSaved = 0;
};

AttemptResult
callAttempt(const std::function<RunMetrics()> &call)
{
    AttemptResult result;
    try {
        result.metrics = call();
        result.ok = true;
    } catch (const std::exception &e) {
        result.message = e.what();
    } catch (...) {
        result.message = "unknown exception";
    }
    return result;
}

/**
 * Run one attempt, optionally bounded by a wall-clock timeout. C++
 * cannot kill a thread, so a timed-out attempt is *abandoned*: it keeps
 * running detached (writing only through the shared promise) while the
 * sweep moves on. promise/future rather than std::async because an
 * async future's destructor would block on the very attempt being
 * abandoned.
 */
AttemptResult
runAttempt(const std::function<RunMetrics()> &call,
           const SweepOptions &options, MetricsRegistry *registry,
           const std::function<void(uint64_t)> &on_checkpoint,
           const std::function<void(uint64_t, unsigned)> &on_resume)
{
    double timeout_s = options.timeoutSeconds;
    if (options.isolate) {
        // Crash-isolated attempt: fork, marshal, reap. Every abnormal
        // child death (signal, silent _exit, OOM-kill) and every
        // timeout comes back as an attributable failure; the wedged
        // child is SIGKILLed, not abandoned. The job's metrics
        // registry rides the same pipe, and with checkpointCycles /
        // stallTimeoutSeconds set the attempt runs the checkpointed
        // protocol (holders, beacons, mid-cell resume) — see
        // runSupervised(body, SupervisorOptions).
        SupervisorOptions sup;
        sup.timeoutSeconds = timeout_s;
        sup.registry = registry;
        sup.checkpointCycles = options.checkpointCycles;
        sup.checkpointKeep = options.checkpointKeep;
        sup.stallTimeoutSeconds = options.stallTimeoutSeconds;
        sup.onCheckpoint = on_checkpoint;
        sup.onResume = on_resume;
        SupervisedResult s = runSupervised(call, sup);
        AttemptResult result;
        result.ok = s.ok;
        result.metrics = std::move(s.metrics);
        result.message = std::move(s.message);
        result.timedOut = s.timedOut;
        result.crashed = s.crashed;
        result.exitSignal = s.exitSignal;
        result.exitCode = s.exitCode;
        result.stalled = s.stalled;
        result.checkpointsTaken = s.checkpointsTaken;
        result.checkpointResumes = s.resumes;
        result.resumedFromCycle = s.resumedFromCycle;
        result.checkpointCyclesSaved = s.cyclesSaved;
        return result;
    }

    if (timeout_s <= 0.0)
        return callAttempt(call);

    auto promise = std::make_shared<std::promise<AttemptResult>>();
    std::future<AttemptResult> future = promise->get_future();
    // The callable is copied into the detached thread: nothing the
    // abandoned attempt touches can dangle when the caller returns.
    std::thread([promise, call]() {
        AttemptResult result = callAttempt(call);
        promise->set_value(std::move(result));
    }).detach();

    if (future.wait_for(std::chrono::duration<double>(timeout_s)) ==
        std::future_status::ready) {
        return future.get();
    }
    AttemptResult result;
    result.message =
        "timed out after " + std::to_string(timeout_s) + "s";
    result.timedOut = true;
    return result;
}

} // namespace

SweepOptions
sweepOptionsFromEnv(SweepOptions base)
{
    auto envDouble = [](const char *name, double &out) {
        if (const char *env = std::getenv(name)) {
            char *end = nullptr;
            double v = std::strtod(env, &end);
            if (end && end != env && *end == '\0' && v >= 0.0)
                out = v;
            else
                atl_warn("ignoring malformed ", name, "='", env, "'");
        }
    };
    auto envUnsigned = [](const char *name, unsigned &out) {
        if (const char *env = std::getenv(name)) {
            // strtoul silently wraps a negative string ("-1" becomes
            // ULONG_MAX), so reject any sign character up front, and
            // range-check against unsigned.
            char *end = nullptr;
            unsigned long v = std::strtoul(env, &end, 10);
            if (!std::strchr(env, '-') && !std::strchr(env, '+') &&
                end && end != env && *end == '\0' &&
                v <= std::numeric_limits<unsigned>::max()) {
                out = static_cast<unsigned>(v);
            } else {
                atl_warn("ignoring malformed ", name, "='", env, "'");
            }
        }
    };
    auto envUint64 = [](const char *name, uint64_t &out) {
        if (const char *env = std::getenv(name)) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(env, &end, 10);
            if (!std::strchr(env, '-') && !std::strchr(env, '+') &&
                end && end != env && *end == '\0') {
                out = static_cast<uint64_t>(v);
            } else {
                atl_warn("ignoring malformed ", name, "='", env, "'");
            }
        }
    };
    if (const char *env = std::getenv("ATL_ISOLATE")) {
        base.isolate = *env && std::string(env) != "0";
    }
    envDouble("ATL_SWEEP_TIMEOUT", base.timeoutSeconds);
    envUnsigned("ATL_SWEEP_ATTEMPTS", base.maxAttempts);
    envDouble("ATL_SWEEP_BACKOFF_MS", base.backoffBaseMs);
    envUnsigned("ATL_SWEEP_KILL_AFTER", base.selfKillAfter);
    envUint64("ATL_CKPT_CYCLES", base.checkpointCycles);
    envUnsigned("ATL_CKPT_KEEP", base.checkpointKeep);
    envDouble("ATL_SWEEP_STALL_TIMEOUT", base.stallTimeoutSeconds);
    return base;
}

SweepFailure::SweepFailure(std::vector<SweepJobFailure> failures)
    : std::runtime_error(summariseFailures(failures)),
      _failures(std::move(failures))
{
}

SweepRunner::SweepRunner(unsigned jobs)
    : _jobs(jobs ? jobs : defaultJobs())
{
}

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("ATL_SWEEP_JOBS")) {
        char *end = nullptr;
        unsigned long n = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        atl_warn("ignoring malformed ATL_SWEEP_JOBS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

uint64_t
SweepRunner::deriveSeed(uint64_t base, uint64_t index)
{
    // splitmix64 finaliser over base advanced by the golden-gamma; the
    // standard way to fan one seed out into independent streams.
    uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void
SweepRunner::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    std::mutex error_mutex;
    std::vector<SweepJobFailure> errors;

    // Every index runs even when some throw: stopping early would
    // leave other workers' in-flight jobs half-reported, and jobs are
    // independent anyway. Failures are collected — all of them, not
    // just the first — and reported together afterwards.
    auto guarded = [&](size_t i) {
        try {
            fn(i);
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(error_mutex);
            errors.push_back({i, {}, e.what(), 1, false});
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            errors.push_back({i, {}, "unknown exception", 1, false});
        }
    };

    size_t workers = std::min<size_t>(_jobs, n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            guarded(i);
    } else {
        std::atomic<size_t> next{0};
        auto work = [&]() {
            for (;;) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                guarded(i);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (size_t w = 1; w < workers; ++w)
            pool.emplace_back(work);
        work();
        for (std::thread &t : pool)
            t.join();
    }

    if (!errors.empty()) {
        std::sort(errors.begin(), errors.end(),
                  [](const SweepJobFailure &a, const SweepJobFailure &b) {
                      return a.index < b.index;
                  });
        throw SweepFailure(std::move(errors));
    }
}

SweepOutcome
SweepRunner::runCollect(const std::vector<SweepJob> &sweep,
                        const SweepOptions &options)
{
    for (const SweepJob &job : sweep) {
        atl_assert(job.body || job.seededBody, "sweep job '", job.name,
                   "' has no body");
    }

    SweepOutcome outcome;
    outcome.results.resize(sweep.size());
    outcome.ok.assign(sweep.size(), 0);
    outcome.resumed.assign(sweep.size(), 0);
    std::atomic<uint64_t> ckpt_resumes_total{0};
    std::atomic<uint64_t> ckpt_cycles_saved_total{0};
    std::mutex failures_mutex;
    std::mutex telemetry_mutex;
    std::atomic<unsigned> jobs_completed{0};
    const unsigned max_attempts = std::max(1u, options.maxAttempts);

    // SIGINT/SIGTERM during the sweep stop the engine from *starting*
    // jobs (in-flight ones finish) so the caller can flush a partial
    // report and, with a journal, resume from it on the next run.
    SweepSignalGuard signal_guard;

    if (options.journal) {
        options.journal->beginSweep(
            SweepJournal::configHash("sweep", sweep,
                                     options.configFingerprint),
            sweep.size());
    }

    // Sweep-level host metrics: cell timing, retries, backoff, cell
    // outcomes. Like the telemetry below they are recorded from every
    // pool worker, so updates share shard 0 under a lock — these are
    // per-cell events, not a hot path.
    struct HostMetricIds
    {
        MetricsRegistry::Id cellWallUs = 0;
        MetricsRegistry::Id cellCpuUs = 0;
        MetricsRegistry::Id retries = 0;
        MetricsRegistry::Id backoffMs = 0;
        MetricsRegistry::Id cellsCompleted = 0;
        MetricsRegistry::Id cellsFailed = 0;
        MetricsRegistry::Id cellsResumed = 0;
    } host_ids;
    std::mutex metrics_mutex;
    if (options.metrics) {
        MetricsRegistry &reg = *options.metrics;
        host_ids.cellWallUs = reg.histogram("sweep.cell_wall_us");
        host_ids.cellCpuUs = reg.histogram("sweep.cell_cpu_us");
        host_ids.retries = reg.counter("sweep.retries");
        host_ids.backoffMs = reg.counter("sweep.backoff_ms");
        host_ids.cellsCompleted = reg.counter("sweep.cells.completed");
        host_ids.cellsFailed = reg.counter("sweep.cells.failed");
        host_ids.cellsResumed = reg.counter("sweep.cells.resumed");
    }
    auto count = [&](MetricsRegistry::Id id, uint64_t delta) {
        if (!options.metrics)
            return;
        std::lock_guard<std::mutex> lock(metrics_mutex);
        options.metrics->add(id, delta);
    };

    // Sweep-level recovery telemetry: the pool records from every
    // worker, so unlike per-job logs this one needs a lock. Crashes,
    // retries and resumes are rare, so contention is irrelevant.
    auto emit = [&](EventKind kind, size_t index, uint64_t attempt,
                    uint64_t detail) {
        if (!options.telemetry)
            return;
        Event e;
        e.kind = kind;
        e.cpu = InvalidCpuId16;
        e.n = index;
        e.m = attempt;
        e.t0 = detail;
        std::lock_guard<std::mutex> lock(telemetry_mutex);
        options.telemetry->record(e);
    };

    forEach(sweep.size(), [&](size_t i) {
        const SweepJob &job = sweep[i];

        if (options.journal) {
            RunMetrics replayed;
            Json replayed_registry;
            uint64_t replayed_ckpt_resumes = 0;
            uint64_t replayed_ckpt_saved = 0;
            if (options.journal->completedMetrics(
                    i, replayed, &replayed_registry,
                    &replayed_ckpt_resumes, &replayed_ckpt_saved)) {
                outcome.results[i] = std::move(replayed);
                outcome.ok[i] = 1;
                outcome.resumed[i] = 1;
                // The cell never executes, so its registry updates
                // come from the done-record snapshot instead.
                if (job.metrics && replayed_registry.isObject() &&
                    !job.metrics->mergeJson(replayed_registry)) {
                    atl_warn("sweep job '", job.name, "': malformed ",
                             "metrics registry in journal; replayed ",
                             "cell loses its registry contribution");
                }
                // Checkpoint accounting rides the done-record so a
                // journal-resumed sweep reports the same totals as the
                // run that actually earned them.
                ckpt_resumes_total += replayed_ckpt_resumes;
                ckpt_cycles_saved_total += replayed_ckpt_saved;
                count(host_ids.cellsResumed, 1);
                emit(EventKind::SweepResume, i, 0, 0);
                return;
            }
        }
        if (SweepSignalGuard::interrupted())
            return; // skipped; the journal resumes it next run

        if (options.journal)
            options.journal->noteStart(i, job.name);

        // Cell timing covers every attempt plus backoff sleeps: the
        // cost of getting the cell done, not of its best attempt.
        auto cell_wall_start = std::chrono::steady_clock::now();
        uint64_t cell_cpu_start = threadCpuMicros();
        auto record_cell_time = [&] {
            if (!options.metrics)
                return;
            std::chrono::duration<double, std::micro> wall =
                std::chrono::steady_clock::now() - cell_wall_start;
            uint64_t cpu_us = threadCpuMicros() - cell_cpu_start;
            std::lock_guard<std::mutex> lock(metrics_mutex);
            options.metrics->observe(
                host_ids.cellWallUs,
                static_cast<uint64_t>(std::max(0.0, wall.count())));
            options.metrics->observe(host_ids.cellCpuUs, cpu_us);
        };

        SweepJobFailure failure;
        failure.index = i;
        failure.name = job.name;
        uint64_t cell_ckpt_resumes = 0;
        uint64_t cell_ckpt_saved = 0;
        for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
            if (attempt > 0) {
                // Exponential backoff with seeded jitter: doubling
                // spreads load off a struggling host, jitter keeps many
                // retrying jobs from re-colliding, and deriving it from
                // (retrySeedBase, index, attempt) keeps reruns
                // bit-reproducible.
                uint64_t wait_ms = 0;
                if (options.backoffBaseMs > 0.0) {
                    double ms = options.backoffBaseMs *
                                static_cast<double>(1ull << std::min(
                                    attempt - 1, 20u));
                    ms = std::min(ms, options.backoffMaxMs);
                    uint64_t z = deriveSeed(
                        deriveSeed(options.retrySeedBase ^
                                       0x6a09e667f3bcc908ull,
                                   options.seedIndexOffset + i),
                        attempt);
                    double jitter =
                        0.5 + static_cast<double>(z >> 11) *
                                  (1.0 / 9007199254740992.0);
                    wait_ms = static_cast<uint64_t>(ms * jitter);
                    failure.attemptsBackoffMs += wait_ms;
                }
                count(host_ids.retries, 1);
                count(host_ids.backoffMs, wait_ms);
                emit(EventKind::SweepRetry, i, attempt, wait_ms);
                if (wait_ms > 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(wait_ms));
                }
            }
            std::function<RunMetrics()> call;
            if (job.seededBody) {
                // Fresh derived seed per attempt: a job wedged by one
                // unlucky seed can succeed on the next try, still
                // reproducibly.
                uint64_t seed = deriveSeed(
                    deriveSeed(options.retrySeedBase,
                               options.seedIndexOffset + i),
                    attempt);
                auto body = job.seededBody;
                call = [body, seed] { return body(seed); };
            } else {
                call = job.body;
            }
            AttemptResult result = runAttempt(
                call, options, job.metrics,
                [&](uint64_t cycle) {
                    emit(EventKind::SweepCheckpoint, i, attempt, cycle);
                },
                [&](uint64_t cycle, unsigned) {
                    emit(EventKind::SweepCkptResume, i, attempt, cycle);
                });
            failure.attempts = attempt + 1;
            // Mid-cell resumes saved re-execution whether or not the
            // cell ultimately succeeds, so accounting accumulates
            // across attempts.
            cell_ckpt_resumes += result.checkpointResumes;
            cell_ckpt_saved += result.checkpointCyclesSaved;
            ckpt_resumes_total += result.checkpointResumes;
            ckpt_cycles_saved_total += result.checkpointCyclesSaved;
            if (result.ok) {
                outcome.results[i] = std::move(result.metrics);
                outcome.ok[i] = 1;
                record_cell_time();
                count(host_ids.cellsCompleted, 1);
                if (options.journal) {
                    if (job.metrics) {
                        Json snapshot = job.metrics->json();
                        options.journal->noteDone(i, outcome.results[i],
                                                  0, &snapshot,
                                                  cell_ckpt_resumes,
                                                  cell_ckpt_saved);
                    } else {
                        options.journal->noteDone(i, outcome.results[i],
                                                  0, nullptr,
                                                  cell_ckpt_resumes,
                                                  cell_ckpt_saved);
                    }
                }
                if (options.selfKillAfter &&
                    jobs_completed.fetch_add(1) + 1 >=
                        options.selfKillAfter) {
                    // Chaos knob: simulate the sweep process dying hard
                    // mid-run. The journal's fsync'd records are all
                    // that survives — exactly what resume tests need.
                    ::raise(SIGKILL);
                }
                return;
            }
            failure.message = std::move(result.message);
            failure.timedOut = result.timedOut;
            failure.crashed = result.crashed;
            failure.exitSignal = result.exitSignal;
            failure.exitCode = result.exitCode;
            failure.stalled = result.stalled;
            failure.checkpointResumes = cell_ckpt_resumes;
            failure.resumedFromCycle = result.resumedFromCycle;
            if (result.crashed || (result.timedOut && options.isolate)) {
                emit(EventKind::SweepCrash, i, attempt,
                     static_cast<uint64_t>(
                         result.exitSignal > 0
                             ? result.exitSignal
                             : result.exitCode));
            }
            if (SweepSignalGuard::interrupted())
                break;
        }
        record_cell_time();
        count(host_ids.cellsFailed, 1);
        if (options.journal)
            options.journal->noteFailed(failure);
        std::lock_guard<std::mutex> lock(failures_mutex);
        outcome.failures.push_back(std::move(failure));
    });

    outcome.checkpointResumes = ckpt_resumes_total.load();
    outcome.checkpointCyclesSaved = ckpt_cycles_saved_total.load();
    outcome.interrupted = SweepSignalGuard::interrupted();
    if (options.journal && outcome.complete()) {
        // Clean end-to-end sweep: the journal has served its purpose;
        // removing it makes the next run start fresh instead of
        // replaying stale cells.
        options.journal->remove();
    }

    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const SweepJobFailure &a, const SweepJobFailure &b) {
                  return a.index < b.index;
              });

    // Traced jobs: print their atl-trace-summary blocks in job order
    // (after the pool is quiet, so the output never interleaves).
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (sweep[i].trace && outcome.ok[i]) {
            printTraceSummary(summarizeTrace(*sweep[i].trace), std::cout,
                              sweep[i].name);
        }
    }
    return outcome;
}

std::vector<RunMetrics>
SweepRunner::run(const std::vector<SweepJob> &sweep,
                 const SweepOptions &options)
{
    SweepOutcome outcome = runCollect(sweep, options);
    if (!outcome.complete())
        throw SweepFailure(std::move(outcome.failures));
    return std::move(outcome.results);
}

BenchReport::BenchReport(std::string bench_name)
    : _name(std::move(bench_name)), _doc(Json::object())
{
    _doc["bench"] = Json(_name);
    // Schema 8 adds mid-cell checkpoint/restore accounting: top-level
    // checkpoint_resumes / checkpoint_cycles_saved (holder wakes and
    // simulated cycles not re-executed, see sim/supervisor.hh), and
    // per-failure stalled / checkpoint_resumes / resumed_from_cycle.
    // (Schema 7 added the optional top-level "metrics" object written
    // by noteMetrics: a merged MetricsRegistry snapshot ({"counters",
    // "gauges", "histograms"}, see obs/metrics.hh);
    // schema 6 the optional fabric fields written by
    // noteFabricReport: top-level workers / stolen_runs and the
    // worker_failures array (slot, pid, exit signal/code, cells lost);
    // schema 5 crash-isolation fields: per-failure exit_signal /
    // exit_code / crashed / attempts_backoff_ms, and the top-level
    // resumed_runs count of cells replayed from a sweep journal;
    // schema 4 the optional top-level "telemetry" object, see
    // traceSummaryJson.)
    _doc["schema"] = Json(8);
    _doc["runs"] = Json::array();
    // Partial-result status (schema 3): noteFailure clears the flag,
    // so a report that lost cells says so instead of passing silently.
    _doc["complete"] = Json(true);
    _doc["failed_runs"] = Json::array();
    _doc["resumed_runs"] = Json(static_cast<uint64_t>(0));
    _doc["checkpoint_resumes"] = Json(static_cast<uint64_t>(0));
    _doc["checkpoint_cycles_saved"] = Json(static_cast<uint64_t>(0));
}

void
BenchReport::set(const std::string &key, Json value)
{
    _doc[key] = std::move(value);
}

void
BenchReport::addRun(const RunMetrics &metrics)
{
    _doc["runs"].push(toJson(metrics));
}

void
BenchReport::noteFailure(const SweepJobFailure &failure)
{
    _doc["complete"] = Json(false);
    Json entry = Json::object();
    entry["index"] = Json(static_cast<uint64_t>(failure.index));
    entry["name"] = Json(failure.name);
    entry["message"] = Json(failure.message);
    entry["attempts"] = Json(static_cast<uint64_t>(failure.attempts));
    entry["timed_out"] = Json(failure.timedOut);
    // Schema 5: how the job died, when it died abnormally.
    entry["crashed"] = Json(failure.crashed);
    entry["exit_signal"] = Json(static_cast<int64_t>(failure.exitSignal));
    entry["exit_code"] = Json(static_cast<int64_t>(failure.exitCode));
    entry["attempts_backoff_ms"] = Json(failure.attemptsBackoffMs);
    // Schema 8: stall-watchdog and mid-cell resume attribution.
    entry["stalled"] = Json(failure.stalled);
    entry["checkpoint_resumes"] = Json(failure.checkpointResumes);
    entry["resumed_from_cycle"] = Json(failure.resumedFromCycle);
    _doc["failed_runs"].push(std::move(entry));
}

void
BenchReport::noteOutcome(const SweepOutcome &outcome)
{
    for (size_t i = 0; i < outcome.results.size(); ++i) {
        if (outcome.ok[i])
            addRun(outcome.results[i]);
    }
    for (const SweepJobFailure &failure : outcome.failures)
        noteFailure(failure);
    // Accumulate rather than overwrite: a bench that runs several
    // sweeps into one report (bench_crash_matrix and its checkpointed
    // column) keeps every sweep's recovery accounting.
    _doc["resumed_runs"] =
        Json(_doc["resumed_runs"].asUint() +
             static_cast<uint64_t>(outcome.resumedRuns()));
    _doc["checkpoint_resumes"] =
        Json(_doc["checkpoint_resumes"].asUint() +
             outcome.checkpointResumes);
    _doc["checkpoint_cycles_saved"] =
        Json(_doc["checkpoint_cycles_saved"].asUint() +
             outcome.checkpointCyclesSaved);
    if (outcome.interrupted) {
        // A sweep cut short by SIGINT/SIGTERM: the skipped cells have
        // no failure entries, so the flag (not failed_runs) is what
        // marks this report partial.
        _doc["complete"] = Json(false);
        _doc["interrupted"] = Json(true);
    }
}

void
BenchReport::noteMetrics(const MetricsRegistry &metrics)
{
    _doc["metrics"] = metrics.json();
}

Json
BenchReport::toJson(const RunMetrics &metrics)
{
    Json json = Json::object();
    json["workload"] = Json(metrics.workload);
    json["policy"] = Json(policyName(metrics.policy));
    json["num_cpus"] = Json(static_cast<uint64_t>(metrics.numCpus));
    json["makespan"] = Json(metrics.makespan);
    json["e_misses"] = Json(metrics.eMisses);
    json["e_refs"] = Json(metrics.eRefs);
    json["instructions"] = Json(metrics.instructions);
    json["context_switches"] = Json(metrics.contextSwitches);
    json["sched_overhead_cycles"] = Json(metrics.schedOverheadCycles);
    json["verified"] = Json(metrics.verified);
    json["mpki"] = Json(metrics.mpki());
    // Host-side diagnostics (schema 2): simulator throughput and block
    // occupancy. Raw counts round-trip; the rates are derived views.
    json["refs_issued"] = Json(metrics.refsIssued);
    json["ref_blocks"] = Json(metrics.refBlocks);
    json["host_seconds"] = Json(metrics.hostSeconds);
    json["refs_per_sec"] = Json(metrics.refsPerSec());
    json["batch_occupancy"] = Json(metrics.batchOccupancy());
    // Fault/degradation counters (schema 3): all zero on a clean run.
    json["fault_events"] = Json(metrics.degradation.faultEvents);
    json["implausible_samples"] =
        Json(metrics.degradation.implausibleSamples);
    json["torn_samples"] = Json(metrics.degradation.tornSamples);
    json["clamped_misses"] = Json(metrics.degradation.clampedMisses);
    json["fallback_activations"] =
        Json(metrics.degradation.fallbackActivations);
    json["fallback_recoveries"] =
        Json(metrics.degradation.fallbackRecoveries);
    json["fallback_intervals"] =
        Json(metrics.degradation.fallbackIntervals);
    return json;
}

bool
BenchReport::fromJson(const Json &json, RunMetrics &out)
{
    if (!json.isObject())
        return false;
    static const char *required[] = {
        "workload",       "policy",           "num_cpus",
        "makespan",       "e_misses",         "e_refs",
        "instructions",   "context_switches", "sched_overhead_cycles",
        "verified",       "refs_issued",      "ref_blocks",
    };
    for (const char *key : required) {
        if (!json.has(key))
            return false;
    }

    const std::string &policy = json.at("policy").asString();
    bool known = false;
    for (PolicyKind kind :
         {PolicyKind::FCFS, PolicyKind::LFF, PolicyKind::CRT}) {
        if (policy == policyName(kind)) {
            out.policy = kind;
            known = true;
            break;
        }
    }
    if (!known)
        return false;

    out.workload = json.at("workload").asString();
    out.numCpus = static_cast<unsigned>(json.at("num_cpus").asUint());
    out.makespan = json.at("makespan").asUint();
    out.eMisses = json.at("e_misses").asUint();
    out.eRefs = json.at("e_refs").asUint();
    out.instructions = json.at("instructions").asUint();
    out.contextSwitches = json.at("context_switches").asUint();
    out.schedOverheadCycles = json.at("sched_overhead_cycles").asUint();
    out.verified = json.at("verified").asBool();
    out.refsIssued = json.at("refs_issued").asUint();
    out.refBlocks = json.at("ref_blocks").asUint();
    if (json.has("host_seconds"))
        out.hostSeconds = json.at("host_seconds").asNumber();
    // Schema-3 degradation counters; optional so schema-2 documents
    // still round-trip (they default to a clean run).
    if (json.has("fault_events"))
        out.degradation.faultEvents = json.at("fault_events").asUint();
    if (json.has("implausible_samples")) {
        out.degradation.implausibleSamples =
            json.at("implausible_samples").asUint();
    }
    if (json.has("torn_samples"))
        out.degradation.tornSamples = json.at("torn_samples").asUint();
    if (json.has("clamped_misses"))
        out.degradation.clampedMisses = json.at("clamped_misses").asUint();
    if (json.has("fallback_activations")) {
        out.degradation.fallbackActivations =
            json.at("fallback_activations").asUint();
    }
    if (json.has("fallback_recoveries")) {
        out.degradation.fallbackRecoveries =
            json.at("fallback_recoveries").asUint();
    }
    if (json.has("fallback_intervals")) {
        out.degradation.fallbackIntervals =
            json.at("fallback_intervals").asUint();
    }
    return true;
}

std::string
BenchReport::resultsDir()
{
    if (const char *env = std::getenv("ATL_RESULTS_DIR")) {
        if (*env)
            return env;
    }
    return "results";
}

std::string
BenchReport::write() const
{
    // A report that cannot be persisted must fail the bench loudly:
    // downstream tooling treats a missing/stale report as "the bench
    // never ran", which is exactly the silent pass to avoid. atl_fatal
    // exits non-zero (or throws LogError in test mode) with the path
    // and OS error so the operator can see *where* and *why*.
    std::string dir = resultsDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        atl_fatal("cannot create results dir '", dir,
                  "': ", ec.message());
    }

    // Crash-safe write: the document goes to a uniquely-named temp
    // file, is fsync'd, and only then rename()d over the target. A
    // sweep killed mid-write leaves the old report (or no report) in
    // place — never a truncated JSON that downstream tooling would
    // choke on — and rename atomicity means concurrent writers can
    // interleave freely with readers always seeing a complete file.
    std::string path = dir + "/" + _name + ".json";
    static std::atomic<unsigned> write_counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(write_counter.fetch_add(1));

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
        atl_fatal("cannot open '", tmp, "' for writing: ",
                  std::strerror(errno ? errno : EIO));
    }
    std::string text = _doc.dump();
    size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            atl_fatal("error writing '", tmp, "': ",
                      std::strerror(err ? err : EIO));
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        atl_fatal("fsync of '", tmp, "' failed: ",
                  std::strerror(err ? err : EIO));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        atl_fatal("cannot rename '", tmp, "' to '", path, "': ",
                  std::strerror(err ? err : EIO));
    }
    // The fsync above made the *bytes* durable; only an fsync of the
    // directory makes the rename itself durable. Without it a power
    // cut can resurrect the old report (or none) even though write()
    // already returned the new path.
    fsyncParentDir(path);
    return path;
}

void
injectJobFaults(std::vector<SweepJob> &jobs, FaultInjector &faults)
{
    for (size_t i = 0; i < jobs.size(); ++i) {
        FaultInjector::JobFault fault = faults.jobFault(i);
        switch (fault.kind) {
          case FaultInjector::JobFaultKind::None:
            break;
          case FaultInjector::JobFaultKind::Throw: {
            std::string name = jobs[i].name;
            jobs[i].seededBody = nullptr;
            jobs[i].body = [name]() -> RunMetrics {
                throw std::runtime_error("injected fault: job '" + name +
                                         "' failed");
            };
            break;
          }
          case FaultInjector::JobFaultKind::Hang: {
            double seconds = fault.seconds;
            if (jobs[i].seededBody) {
                auto inner = jobs[i].seededBody;
                jobs[i].seededBody = [inner, seconds](uint64_t seed) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(seconds));
                    return inner(seed);
                };
            } else {
                auto inner = jobs[i].body;
                jobs[i].body = [inner, seconds]() {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(seconds));
                    return inner();
                };
            }
            break;
          }
          case FaultInjector::JobFaultKind::Crash: {
            // Crash-prone cell: every attempt rolls its own fate from
            // the attempt seed, so the wrapper must be a seededBody —
            // that is how the sweep hands each retry a fresh seed. A
            // plain body is simply called ignoring the seed.
            double prob = fault.perAttemptProb;
            if (jobs[i].seededBody) {
                auto inner = jobs[i].seededBody;
                jobs[i].seededBody = [inner, prob](uint64_t seed) {
                    FaultInjector::executeCrash(
                        FaultInjector::crashDecision(prob, seed));
                    return inner(seed);
                };
            } else {
                auto inner = jobs[i].body;
                jobs[i].body = nullptr;
                jobs[i].seededBody = [inner, prob](uint64_t seed) {
                    FaultInjector::executeCrash(
                        FaultInjector::crashDecision(prob, seed));
                    return inner();
                };
            }
            break;
          }
        }
    }
}

} // namespace atl
