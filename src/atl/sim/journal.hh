/**
 * @file
 * Durable, resumable sweep journal. An append-only JSONL file records
 * every job transition of a sweep — start, done (with the full
 * RunMetrics), failed — each line fsync'd before the engine moves on,
 * so the journal survives SIGKILL, power loss and crashes of the sweep
 * process itself. A rerun replays the completed cells straight from the
 * journal and executes only the rest; a sweep that finishes clean
 * removes its journal so the next run starts fresh.
 *
 * Record stream (one JSON object per line):
 *
 *   {"kind":"begin","bench":NAME,"config_hash":H,"jobs":N}
 *   {"kind":"start","index":I,"name":JOB}
 *   {"kind":"done","index":I,"metrics":{...BenchReport::toJson...}}
 *   {"kind":"failed","index":I,"name":JOB,"message":...,...}
 *
 * The begin header keys the journal to (bench name, config hash, job
 * count), where the config hash also folds in the caller's
 * configuration fingerprint (workload parameters, machine config,
 * seeds — anything that changes a cell's metrics without renaming it):
 * a journal written by a different sweep shape *or* parameterisation
 * is discarded instead of replayed, so resume can never stitch cells
 * from two different experiments together. A truncated final line (the crash
 * happened mid-write) is ignored; everything before it replays.
 */

#ifndef ATL_SIM_JOURNAL_HH
#define ATL_SIM_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "atl/sim/sweep.hh"

namespace atl
{

/** Append-only JSONL journal for one sweep (thread-safe: pool workers
 *  append concurrently). */
class SweepJournal
{
  public:
    /**
     * @param bench_name sweep identity (also the default file stem)
     * @param path journal file; empty derives
     *        "<results dir>/<bench_name>.journal.jsonl"
     */
    explicit SweepJournal(std::string bench_name, std::string path = "");
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Journal file path. */
    const std::string &path() const { return _path; }

    /**
     * Open the journal for a sweep of the given shape: load any
     * existing file, keep its completed cells when the begin header
     * matches (bench, config_hash, job_count), otherwise discard it and
     * write a fresh header. Called by SweepRunner::runCollect.
     * @return number of completed cells available for replay
     */
    size_t beginSweep(uint64_t config_hash, size_t job_count);

    /** Replay the metrics of a completed cell.
     *  @retval false when the journal has no done-record for index */
    bool completedMetrics(size_t index, RunMetrics &out) const;

    /** Completed cells loaded from disk (replayable on resume). */
    size_t completedCount() const;

    /** Record that job `index` is about to run (fsync'd). */
    void noteStart(size_t index, const std::string &name);

    /** Record a completed job with its metrics (fsync'd). */
    void noteDone(size_t index, const RunMetrics &metrics);

    /** Record a failed job after its last attempt (fsync'd). Failed
     *  cells are *not* replayed on resume — they run again. */
    void noteFailed(const SweepJobFailure &failure);

    /** Delete the journal (the sweep completed; a rerun starts fresh). */
    void remove();

    /** Stable hash of a sweep's shape: bench name, job count, every
     *  job name, and the caller's configuration fingerprint (FNV-1a
     *  64). Job names alone cannot distinguish two sweeps whose cells
     *  differ only in parameters (workload sizes, MachineConfig,
     *  policy tuning, fault plan/seed), so callers must fold anything
     *  that changes a cell's metrics into the fingerprint — otherwise
     *  a stale journal would replay old metrics as current results
     *  (see SweepOptions::configFingerprint). */
    static uint64_t configHash(const std::string &bench_name,
                               const std::vector<SweepJob> &sweep,
                               const std::string &config_fingerprint);

  private:
    void appendRecord(const Json &record);

    std::string _bench;
    std::string _path;
    int _fd = -1;
    mutable std::mutex _mutex;
    /** Cells replayable from the loaded journal, by job index. */
    std::unordered_map<size_t, RunMetrics> _completed;
};

} // namespace atl

#endif // ATL_SIM_JOURNAL_HH
