/**
 * @file
 * Durable, resumable sweep journal. An append-only JSONL file records
 * every job transition of a sweep — start, done (with the full
 * RunMetrics), failed — each line fsync'd before the engine moves on,
 * so the journal survives SIGKILL, power loss and crashes of the sweep
 * process itself. A rerun replays the completed cells straight from the
 * journal and executes only the rest; a sweep that finishes clean
 * removes its journal so the next run starts fresh.
 *
 * Record stream (one JSON object per line):
 *
 *   {"kind":"begin","bench":NAME,"config_hash":H,"jobs":N}
 *   {"kind":"start","index":I,"name":JOB}
 *   {"kind":"done","index":I,"metrics":{...BenchReport::toJson...}}
 *   {"kind":"failed","index":I,"name":JOB,"message":...,...}
 *
 * A "done" record may also carry "ckpt_resumes" / "ckpt_cycles_saved"
 * (mid-cell checkpoint accounting, omitted when zero) and "ts", a host
 * CLOCK_MONOTONIC microsecond stamp of the completing attempt. The sweep fabric's
 * per-worker journal shards use it to resolve duplicate completions of
 * the same cell (a stolen cell can finish on two workers): merged
 * replay keeps the earliest attempt.
 *
 * The begin header keys the journal to (bench name, config hash, job
 * count), where the config hash also folds in the caller's
 * configuration fingerprint (workload parameters, machine config,
 * seeds — anything that changes a cell's metrics without renaming it):
 * a journal written by a different sweep shape *or* parameterisation
 * is discarded instead of replayed, so resume can never stitch cells
 * from two different experiments together. A truncated final line (the crash
 * happened mid-write) is ignored; everything before it replays.
 */

#ifndef ATL_SIM_JOURNAL_HH
#define ATL_SIM_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "atl/sim/sweep.hh"

namespace atl
{

/**
 * Best-effort fsync of a file's parent directory, making a preceding
 * create/rename/unlink of the file itself durable (fsyncing the file
 * persists its bytes; only fsyncing the directory persists the *entry*
 * pointing at them). No-op on errors: directory-entry durability is a
 * crash-consistency hardening, not a correctness requirement.
 */
void fsyncParentDir(const std::string &file_path);

/** One completed cell recovered from a journal replay. */
struct ReplayedCell
{
    /** Job index within the sweep. */
    size_t index = 0;
    /** Attempt timestamp (CLOCK_MONOTONIC microseconds) from the
     *  record's "ts" key; 0 when the record carried none. */
    uint64_t ts = 0;
    RunMetrics metrics;
    /** MetricsRegistry::json() snapshot from the record's "registry"
     *  key (null when the record carried none), so resume restores a
     *  replayed cell's metrics registry, not only its RunMetrics. */
    Json registry;
    /** Mid-cell checkpoint resumes the cell accrued before completing
     *  ("ckpt_resumes" key, 0 when absent) — replayed so a resumed
     *  sweep's schema-8 accounting matches the run that earned it. */
    uint64_t ckptResumes = 0;
    /** Simulated cycles those resumes saved ("ckpt_cycles_saved"). */
    uint64_t ckptCyclesSaved = 0;
};

/** Append-only JSONL journal for one sweep (thread-safe: pool workers
 *  append concurrently). */
class SweepJournal
{
  public:
    /**
     * @param bench_name sweep identity (also the default file stem)
     * @param path journal file; empty derives
     *        "<results dir>/<bench_name>.journal.jsonl"
     */
    explicit SweepJournal(std::string bench_name, std::string path = "");
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Journal file path. */
    const std::string &path() const { return _path; }

    /**
     * Open the journal for a sweep of the given shape: load any
     * existing file, keep its completed cells when the begin header
     * matches (bench, config_hash, job_count), otherwise discard it and
     * write a fresh header. Called by SweepRunner::runCollect.
     * @return number of completed cells available for replay
     */
    size_t beginSweep(uint64_t config_hash, size_t job_count);

    /** Replay the metrics of a completed cell.
     *  @param registry when non-null, receives the cell's recorded
     *         MetricsRegistry::json() snapshot (null Json when the
     *         done-record carried none)
     *  @param ckpt_resumes / @param ckpt_cycles_saved when non-null,
     *         receive the cell's mid-cell checkpoint accounting (0
     *         when the record carried none)
     *  @retval false when the journal has no done-record for index */
    bool completedMetrics(size_t index, RunMetrics &out,
                          Json *registry = nullptr,
                          uint64_t *ckpt_resumes = nullptr,
                          uint64_t *ckpt_cycles_saved = nullptr) const;

    /** Completed cells loaded from disk (replayable on resume). */
    size_t completedCount() const;

    /** Record that job `index` is about to run (fsync'd). */
    void noteStart(size_t index, const std::string &name);

    /** Record a completed job with its metrics (fsync'd).
     *  @param attempt_ts optional CLOCK_MONOTONIC microsecond stamp of
     *         the completing attempt ("ts" key; omitted when 0), used
     *         by merged-shard replay to dedupe by earliest attempt
     *  @param registry optional MetricsRegistry::json() snapshot of
     *         the cell's metrics registry ("registry" key), restored
     *         on resume via completedMetrics/ReplayedCell
     *  @param ckpt_resumes / @param ckpt_cycles_saved the cell's
     *         mid-cell checkpoint accounting ("ckpt_resumes" /
     *         "ckpt_cycles_saved" keys, omitted when both are 0 so
     *         uncheckpointed journals stay byte-identical) */
    void noteDone(size_t index, const RunMetrics &metrics,
                  uint64_t attempt_ts = 0,
                  const Json *registry = nullptr,
                  uint64_t ckpt_resumes = 0,
                  uint64_t ckpt_cycles_saved = 0);

    /** Record a failed job after its last attempt (fsync'd). Failed
     *  cells are *not* replayed on resume — they run again. */
    void noteFailed(const SweepJobFailure &failure);

    /** Delete the journal (the sweep completed; a rerun starts fresh). */
    void remove();

    /** Stable hash of a sweep's shape: bench name, job count, every
     *  job name, and the caller's configuration fingerprint (FNV-1a
     *  64). Job names alone cannot distinguish two sweeps whose cells
     *  differ only in parameters (workload sizes, MachineConfig,
     *  policy tuning, fault plan/seed), so callers must fold anything
     *  that changes a cell's metrics into the fingerprint — otherwise
     *  a stale journal would replay old metrics as current results
     *  (see SweepOptions::configFingerprint). */
    static uint64_t configHash(const std::string &bench_name,
                               const std::vector<SweepJob> &sweep,
                               const std::string &config_fingerprint);

    /**
     * Replay one journal file without opening it for writing: collect
     * every "done" record (later records for the same index are kept —
     * callers dedupe across *files*, not within one) in file order.
     * Torn tails are tolerated exactly as beginSweep tolerates them: a
     * malformed line ends the replay, everything before it counts.
     * @param io_error when non-null, receives "<path>: <strerror>" if
     *        the file exists in name only for the OS — open(2) failed
     *        (EACCES, EIO, a race with unlink...) — and is left empty
     *        for the two legitimate skip cases (no file was ever
     *        written, or a stale header from another sweep shape).
     *        Callers use it to tell "unreadable shard: fail loudly"
     *        from "stale shard: discard quietly".
     * @retval false when the file is missing or its begin header does
     *         not match (bench_name, config_hash, job_count); out is
     *         then empty
     */
    static bool replay(const std::string &path,
                       const std::string &bench_name,
                       uint64_t config_hash, size_t job_count,
                       std::vector<ReplayedCell> &out,
                       std::string *io_error = nullptr);

    /**
     * Garbage-collect superseded journal files for one bench key:
     * unlink every "<bench_name>.*journal.jsonl" in dir whose begin
     * header no longer matches (bench_name, keep_hash) — a journal (or
     * fabric shard) left behind by a run with a different config
     * fingerprint can never be replayed again, so orphaning it in the
     * results directory only accumulates confusing stale state.
     * Files whose header matches keep_hash are resumable and kept.
     * @return number of files removed
     */
    static size_t gcStale(const std::string &dir,
                          const std::string &bench_name,
                          uint64_t keep_hash);

  private:
    void appendRecord(const Json &record);

    std::string _bench;
    std::string _path;
    /** True when the path was derived from the bench name: beginSweep
     *  then also garbage-collects superseded sibling journals. Shards
     *  opened at explicit paths (fabric workers) skip the GC — their
     *  coordinator does it once, before any worker runs, so workers
     *  never race each other unlinking files. */
    bool _gcSiblings = false;
    int _fd = -1;
    mutable std::mutex _mutex;
    /** Cells replayable from the loaded journal, by job index. */
    std::unordered_map<size_t, ReplayedCell> _completed;
};

} // namespace atl

#endif // ATL_SIM_JOURNAL_HH
