#include "atl/sim/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "atl/sim/sweep.hh"
#include "atl/util/json.hh"

namespace atl
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

/** Write the whole buffer, retrying on EINTR/partial writes. Best
 *  effort: the child has nowhere to report a pipe error anyway. */
void
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<size_t>(n);
    }
}

/** Child side: run the body, marshal metrics (or the exception text)
 *  into the pipe, and _exit. Never returns. _exit (not exit) so the
 *  duplicated stdio buffers and atexit handlers of the parent are not
 *  replayed. */
[[noreturn]] void
childMain(int fd, const std::function<RunMetrics()> &body)
{
    int code = 0;
    std::string payload;
    try {
        RunMetrics metrics = body();
        payload = BenchReport::toJson(metrics).dumpCompact();
    } catch (const std::exception &e) {
        payload = e.what();
        code = kSupervisedExceptionExit;
    } catch (...) {
        payload = "unknown exception";
        code = kSupervisedExceptionExit;
    }
    writeAll(fd, payload);
    ::close(fd);
    ::_exit(code);
}

/** Reap the child, retrying on EINTR. */
int
reap(pid_t pid)
{
    int status = 0;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return status;
        if (r < 0 && errno == EINTR)
            continue;
        // ECHILD and friends: nothing left to reap; synthesise a clean
        // exit so the caller's status decoding stays well-defined.
        return 0;
    }
}

} // namespace

SupervisedResult
runSupervised(const std::function<RunMetrics()> &body, double timeout_s)
{
    SupervisedResult result;

    int fds[2];
    if (::pipe(fds) != 0) {
        result.message = std::string("pipe failed: ") +
                         std::strerror(errno);
        return result;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        result.message = std::string("fork failed: ") +
                         std::strerror(errno);
        ::close(fds[0]);
        ::close(fds[1]);
        return result;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(fds[1], body);
    }
    ::close(fds[1]);

    // Read the child's payload until EOF or the deadline. EOF arrives
    // when the child _exits *or* dies abnormally (the kernel closes its
    // end either way), so this loop also doubles as the death watch.
    SteadyClock::time_point deadline{};
    bool bounded = timeout_s > 0.0;
    if (bounded) {
        deadline = SteadyClock::now() +
                   std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(timeout_s));
    }

    std::string output;
    char buf[4096];
    for (;;) {
        int wait_ms = -1;
        if (bounded) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - SteadyClock::now());
            if (left.count() <= 0) {
                result.timedOut = true;
                break;
            }
            wait_ms = static_cast<int>(left.count()) + 1;
        }
        struct pollfd p = {fds[0], POLLIN, 0};
        int pr = ::poll(&p, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break; // poll error: fall through to reap with what we have
        }
        if (pr == 0) {
            result.timedOut = true;
            break;
        }
        ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF: the child is done (or dead)
        output.append(buf, static_cast<size_t>(n));
    }
    ::close(fds[0]);

    if (result.timedOut) {
        // A timeout really reclaims the attempt: the child is killed
        // outright and reaped, not abandoned to keep burning a core.
        ::kill(pid, SIGKILL);
        reap(pid);
        result.message = "timed out after " + std::to_string(timeout_s) +
                         "s (child killed)";
        result.exitSignal = SIGKILL;
        return result;
    }

    int status = reap(pid);
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        result.crashed = true;
        result.exitSignal = sig;
        const char *name = strsignal(sig);
        result.message = "child killed by signal " + std::to_string(sig) +
                         (name ? std::string(" (") + name + ")" : "");
        return result;
    }

    int code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
    if (code == kSupervisedExceptionExit) {
        result.exitCode = code;
        result.message = output.empty() ? "child exception" : output;
        return result;
    }
    if (code != 0) {
        // Silent death: the body (or an injected fault) called _exit
        // without reporting anything.
        result.crashed = true;
        result.exitCode = code;
        result.message = "child exited with code " + std::to_string(code) +
                         " without reporting metrics";
        return result;
    }

    Json parsed;
    std::string error;
    if (!Json::parse(output, parsed, &error) ||
        !BenchReport::fromJson(parsed, result.metrics)) {
        result.crashed = true;
        result.message = "child exited 0 but its metrics did not parse" +
                         (error.empty() ? std::string()
                                        : ": " + error);
        return result;
    }
    result.ok = true;
    return result;
}

// ---------------------------------------------------------------------
// SweepSignalGuard
// ---------------------------------------------------------------------

namespace
{

/** Set by the handler; read by the sweep engine between jobs. */
volatile sig_atomic_t g_interrupted = 0;
/** Live guard count; handlers installed on 0 -> 1, restored on 1 -> 0.
 *  Guards are constructed on the sweep's calling thread only, so a
 *  plain counter is enough. */
int g_guardDepth = 0;

void
onSweepSignal(int)
{
    g_interrupted = 1;
}

} // namespace

SweepSignalGuard::SweepSignalGuard() : _oldInt(), _oldTerm()
{
    if (g_guardDepth++ > 0)
        return;
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onSweepSignal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &_oldInt);
    ::sigaction(SIGTERM, &action, &_oldTerm);
}

SweepSignalGuard::~SweepSignalGuard()
{
    if (--g_guardDepth > 0)
        return;
    ::sigaction(SIGINT, &_oldInt, nullptr);
    ::sigaction(SIGTERM, &_oldTerm, nullptr);
    g_interrupted = 0;
}

bool
SweepSignalGuard::interrupted()
{
    return g_interrupted != 0;
}

} // namespace atl
