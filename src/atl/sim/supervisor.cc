#include "atl/sim/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "atl/obs/metrics.hh"
#include "atl/sim/sweep.hh"
#include "atl/util/json.hh"

namespace atl
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

/**
 * Serialises pipe() -> fork() -> close(write end) across the sweep
 * pool's worker threads. Without it, a sibling worker forking in the
 * window between this call's pipe() and the parent-side close of the
 * write end would inherit a copy of that write end (there is no exec,
 * so CLOEXEC cannot help), and the parent's EOF — its primary death
 * watch — would be delayed until the *sibling's* child exits too:
 * cleanly-received metrics would be misreported as timeouts, and an
 * unbounded attempt could block on a wedged stranger forever.
 * Exposed to other forking subsystems via forkSerializeMutex().
 */
std::mutex g_forkMutex;

/** Poll tick for the waitpid(WNOHANG) death-watch: an upper bound on
 *  how long child death can go unnoticed when pipe EOF never arrives
 *  (e.g. a grandchild forked by the job body keeps the write end
 *  open). */
constexpr int kDeathWatchTickMs = 100;

/** Write the whole buffer, retrying on EINTR/partial writes. Best
 *  effort: the child has nowhere to report a pipe error anyway. */
void
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<size_t>(n);
    }
}

/** Child side: run the body, marshal metrics (or the exception text)
 *  into the pipe, and _exit. Never returns. _exit (not exit) so the
 *  duplicated stdio buffers and atexit handlers of the parent are not
 *  replayed.
 *
 *  Forked from a multi-threaded parent, so POSIX only guarantees
 *  async-signal-safe functions here; running a full C++ job body
 *  relies on glibc reinitialising its malloc arenas via its internal
 *  fork handlers (documented assumption — see "Crash isolation" in
 *  docs/INTERNALS.md). The corollary contract: nothing on this path,
 *  job body included, may block on a process-global lock that another
 *  parent thread could have held at fork time. The library keeps its
 *  side of that bargain — the warn sink is thread-local, and the
 *  sweep engine's telemetry/journal mutexes are never held across
 *  runSupervised() — and sweep-job bodies are self-contained machine
 *  builds by contract. */
[[noreturn]] void
childMain(int fd, const std::function<RunMetrics()> &body,
          MetricsRegistry *registry)
{
    int code = 0;
    std::string payload;
    try {
        RunMetrics metrics = body();
        if (registry) {
            // Wrapped wire format: the registry updates the body made
            // in this child would die with it; snapshot them alongside
            // the metrics so the parent can merge them back.
            Json doc = Json::object();
            doc["metrics"] = BenchReport::toJson(metrics);
            doc["registry"] = registry->json();
            payload = doc.dumpCompact();
        } else {
            payload = BenchReport::toJson(metrics).dumpCompact();
        }
    } catch (const std::exception &e) {
        payload = e.what();
        code = kSupervisedExceptionExit;
    } catch (...) {
        payload = "unknown exception";
        code = kSupervisedExceptionExit;
    }
    writeAll(fd, payload);
    ::close(fd);
    ::_exit(code);
}

/** Reap the child, retrying on EINTR. */
int
reap(pid_t pid)
{
    int status = 0;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return status;
        if (r < 0 && errno == EINTR)
            continue;
        // ECHILD and friends: nothing left to reap; synthesise a clean
        // exit so the caller's status decoding stays well-defined.
        return 0;
    }
}

} // namespace

std::mutex &
forkSerializeMutex()
{
    return g_forkMutex;
}

SupervisedResult
runSupervised(const std::function<RunMetrics()> &body, double timeout_s,
              MetricsRegistry *registry)
{
    SupervisedResult result;

    int fds[2];
    pid_t pid;
    {
        // pipe -> fork -> close(write end) happens atomically with
        // respect to every other runSupervised() call (see g_forkMutex
        // above): at any fork, the only write end open in the parent is
        // the forking call's own, so pipe EOF reliably means *this*
        // child is done. The child inherits the locked mutex but never
        // touches it (it runs childMain and _exits).
        std::lock_guard<std::mutex> lock(g_forkMutex);
        if (::pipe(fds) != 0) {
            result.message = std::string("pipe failed: ") +
                             std::strerror(errno);
            return result;
        }

        pid = ::fork();
        if (pid < 0) {
            result.message = std::string("fork failed: ") +
                             std::strerror(errno);
            ::close(fds[0]);
            ::close(fds[1]);
            return result;
        }
        if (pid == 0) {
            ::close(fds[0]);
            childMain(fds[1], body, registry);
        }
        ::close(fds[1]);
    }

    // Read the child's payload until EOF or the deadline. EOF arrives
    // when the child _exits *or* dies abnormally (the kernel closes its
    // end either way), so this loop doubles as the primary death watch;
    // a periodic waitpid(WNOHANG) backs it up for the one case EOF
    // cannot cover — a grandchild forked by the job body outliving the
    // child with an inherited copy of the write end.
    SteadyClock::time_point deadline{};
    bool bounded = timeout_s > 0.0;
    if (bounded) {
        deadline = SteadyClock::now() +
                   std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(timeout_s));
    }

    std::string output;
    char buf[4096];
    int status = 0;
    bool reaped = false;
    for (;;) {
        int wait_ms = kDeathWatchTickMs;
        if (bounded) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - SteadyClock::now());
            if (left.count() <= 0) {
                result.timedOut = true;
                break;
            }
            wait_ms = static_cast<int>(std::min<long long>(
                left.count() + 1, kDeathWatchTickMs));
        }
        struct pollfd p = {fds[0], POLLIN, 0};
        int pr = ::poll(&p, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break; // poll error: fall through to reap with what we have
        }
        if (pr > 0) {
            ssize_t n = ::read(fds[0], buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (n == 0)
                break; // EOF: the child is done (or dead)
            output.append(buf, static_cast<size_t>(n));
            continue;
        }
        // Poll tick expired without data: the deadline is re-checked at
        // the top of the loop; here, notice a child that died without
        // its EOF ever reaching us.
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
            reaped = true;
            // Drain whatever the child flushed before dying.
            for (;;) {
                struct pollfd q = {fds[0], POLLIN, 0};
                if (::poll(&q, 1, 0) <= 0)
                    break;
                ssize_t n = ::read(fds[0], buf, sizeof(buf));
                if (n <= 0)
                    break;
                output.append(buf, static_cast<size_t>(n));
            }
            break;
        }
    }
    ::close(fds[0]);

    if (result.timedOut) {
        // A timeout really reclaims the attempt: the child is killed
        // outright and reaped, not abandoned to keep burning a core.
        ::kill(pid, SIGKILL);
        reap(pid);
        result.message = "timed out after " + std::to_string(timeout_s) +
                         "s (child killed)";
        result.exitSignal = SIGKILL;
        return result;
    }

    if (!reaped)
        status = reap(pid);
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        result.crashed = true;
        result.exitSignal = sig;
        const char *name = strsignal(sig);
        result.message = "child killed by signal " + std::to_string(sig) +
                         (name ? std::string(" (") + name + ")" : "");
        return result;
    }

    int code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
    if (code == kSupervisedExceptionExit) {
        result.exitCode = code;
        result.message = output.empty() ? "child exception" : output;
        return result;
    }
    if (code != 0) {
        // Silent death: the body (or an injected fault) called _exit
        // without reporting anything.
        result.crashed = true;
        result.exitCode = code;
        result.message = "child exited with code " + std::to_string(code) +
                         " without reporting metrics";
        return result;
    }

    Json parsed;
    std::string error;
    bool shape_ok = Json::parse(output, parsed, &error);
    if (shape_ok) {
        // Wrapped format when a registry rides along (see childMain);
        // bare BenchReport::toJson otherwise.
        const Json *metrics_doc = &parsed;
        if (registry) {
            shape_ok = parsed.isObject() && parsed.has("metrics") &&
                       parsed.has("registry");
            if (shape_ok)
                metrics_doc = &parsed.at("metrics");
        }
        shape_ok = shape_ok &&
                   BenchReport::fromJson(*metrics_doc, result.metrics);
    }
    if (!shape_ok) {
        result.crashed = true;
        result.message = "child exited 0 but its metrics did not parse" +
                         (error.empty() ? std::string()
                                        : ": " + error);
        return result;
    }
    if (registry && !registry->mergeJson(parsed.at("registry"))) {
        result.crashed = true;
        result.message =
            "child exited 0 but its metrics registry did not parse";
        return result;
    }
    result.ok = true;
    return result;
}

// ---------------------------------------------------------------------
// SweepSignalGuard
// ---------------------------------------------------------------------

namespace
{

/** Set by the handler; read by the sweep engine's worker threads
 *  between jobs. A lock-free atomic rather than volatile sig_atomic_t:
 *  the handler can run on any thread while every pool worker polls the
 *  flag, and volatile gives neither cross-thread visibility nor
 *  data-race freedom. Lock-free atomic stores are async-signal-safe. */
std::atomic<int> g_interrupted{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free flag");
/** Live guard count; handlers installed on 0 -> 1, restored on 1 -> 0.
 *  Guards are constructed on the sweep's calling thread only, so a
 *  plain counter is enough. */
int g_guardDepth = 0;

void
onSweepSignal(int)
{
    g_interrupted.store(1, std::memory_order_relaxed);
}

} // namespace

SweepSignalGuard::SweepSignalGuard() : _oldInt(), _oldTerm()
{
    if (g_guardDepth++ > 0)
        return;
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onSweepSignal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &_oldInt);
    ::sigaction(SIGTERM, &action, &_oldTerm);
}

SweepSignalGuard::~SweepSignalGuard()
{
    if (--g_guardDepth > 0)
        return;
    ::sigaction(SIGINT, &_oldInt, nullptr);
    ::sigaction(SIGTERM, &_oldTerm, nullptr);
    g_interrupted.store(0, std::memory_order_relaxed);
}

bool
SweepSignalGuard::interrupted()
{
    return g_interrupted.load(std::memory_order_relaxed) != 0;
}

} // namespace atl
