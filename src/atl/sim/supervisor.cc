#include "atl/sim/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <vector>

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "atl/fault/fault.hh"
#include "atl/obs/metrics.hh"
#include "atl/runtime/checkpoint.hh"
#include "atl/sim/sweep.hh"
#include "atl/util/json.hh"

namespace atl
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

/**
 * Serialises pipe() -> fork() -> close(write end) across the sweep
 * pool's worker threads. Without it, a sibling worker forking in the
 * window between this call's pipe() and the parent-side close of the
 * write end would inherit a copy of that write end (there is no exec,
 * so CLOEXEC cannot help), and the parent's EOF — its primary death
 * watch — would be delayed until the *sibling's* child exits too:
 * cleanly-received metrics would be misreported as timeouts, and an
 * unbounded attempt could block on a wedged stranger forever.
 * Exposed to other forking subsystems via forkSerializeMutex().
 */
std::mutex g_forkMutex;

/** Poll tick for the waitpid(WNOHANG) death-watch: an upper bound on
 *  how long child death can go unnoticed when pipe EOF never arrives
 *  (e.g. a grandchild forked by the job body keeps the write end
 *  open). */
constexpr int kDeathWatchTickMs = 100;

void closeInheritedLifelines(); // defined with the checkpointed mode

/** Write the whole buffer, retrying on EINTR/partial writes. Best
 *  effort: the child has nowhere to report a pipe error anyway. */
void
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<size_t>(n);
    }
}

/** Child side: run the body, marshal metrics (or the exception text)
 *  into the pipe, and _exit. Never returns. _exit (not exit) so the
 *  duplicated stdio buffers and atexit handlers of the parent are not
 *  replayed.
 *
 *  Forked from a multi-threaded parent, so POSIX only guarantees
 *  async-signal-safe functions here; running a full C++ job body
 *  relies on glibc reinitialising its malloc arenas via its internal
 *  fork handlers (documented assumption — see "Crash isolation" in
 *  docs/INTERNALS.md). The corollary contract: nothing on this path,
 *  job body included, may block on a process-global lock that another
 *  parent thread could have held at fork time. The library keeps its
 *  side of that bargain — the warn sink is thread-local, and the
 *  sweep engine's telemetry/journal mutexes are never held across
 *  runSupervised() — and sweep-job bodies are self-contained machine
 *  builds by contract. */
[[noreturn]] void
childMain(int fd, const std::function<RunMetrics()> &body,
          MetricsRegistry *registry)
{
    // A concurrent *checkpointed* attempt's lifeline write end must not
    // survive in this unrelated child (see g_lifelineFds below); a
    // no-op when no checkpointed attempts are in flight.
    closeInheritedLifelines();
    int code = 0;
    std::string payload;
    try {
        RunMetrics metrics = body();
        if (registry) {
            // Wrapped wire format: the registry updates the body made
            // in this child would die with it; snapshot them alongside
            // the metrics so the parent can merge them back.
            Json doc = Json::object();
            doc["metrics"] = BenchReport::toJson(metrics);
            doc["registry"] = registry->json();
            payload = doc.dumpCompact();
        } else {
            payload = BenchReport::toJson(metrics).dumpCompact();
        }
    } catch (const std::exception &e) {
        payload = e.what();
        code = kSupervisedExceptionExit;
    } catch (...) {
        payload = "unknown exception";
        code = kSupervisedExceptionExit;
    }
    writeAll(fd, payload);
    ::close(fd);
    ::_exit(code);
}

/** Reap the child, retrying on EINTR. */
int
reap(pid_t pid)
{
    int status = 0;
    for (;;) {
        pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return status;
        if (r < 0 && errno == EINTR)
            continue;
        // ECHILD and friends: nothing left to reap; synthesise a clean
        // exit so the caller's status decoding stays well-defined.
        return 0;
    }
}

// ---------------------------------------------------------------------
// Checkpointed mode (SupervisorOptions::checkpointCycles /
// stallTimeoutSeconds)
// ---------------------------------------------------------------------

/** Framed wire protocol on the payload pipe. Every B/K frame is one
 *  write() far under PIPE_BUF, hence atomic: a writer SIGKILLed
 *  mid-run can never tear a frame. The F frame's header is atomic too;
 *  its JSON body may span writes, but it is the writer's last act, and
 *  the parent discards a torn tail before waking a holder. */
constexpr char kFrameBeacon = 'B'; ///< + u64 cycle (progress)
constexpr char kFrameCkpt = 'K';   ///< + u64 cycle + i32 holder pid
constexpr char kFrameFinal = 'F';  ///< + u32 len + payload bytes

/** Beacon cadence (simulated cycles) when only the stall watchdog is
 *  on: frequent enough that a live cell is never mistaken for a wedged
 *  one, rare enough that the pipe writes stay off the hot path. With
 *  checkpointing on, beacons ride at checkpointCycles / 4 instead. */
constexpr uint64_t kStallBeaconCycles = 65536;

/** Lifeline *write* fds of every in-flight checkpointed attempt,
 *  guarded by g_forkMutex (all mutation happens inside the same
 *  critical section as the fork). A freshly forked child closes every
 *  registered fd: a sibling attempt's lifeline write end surviving in
 *  an unrelated child would keep that sibling's orphaned holders from
 *  ever seeing EOF — the same fd-leak hazard g_forkMutex exists for,
 *  one pipe over. */
std::vector<int> g_lifelineFds;

void
closeInheritedLifelines()
{
    // Called in a just-forked child; the fork happened under
    // g_forkMutex, so this snapshot is consistent without locking (and
    // the child must never touch the inherited mutex anyway).
    for (int fd : g_lifelineFds)
        ::close(fd);
}

/** Mark this process a child subreaper (idempotent): checkpoint
 *  holders are *grandchildren* while the active child lives, and the
 *  only way to reap them after it dies is to inherit them. Without the
 *  flag (non-Linux), orphaned holders reparent to init, which reaps
 *  them — the chain still cannot leak, we just cannot observe it. */
void
becomeSubreaper()
{
#ifdef PR_SET_CHILD_SUBREAPER
    static std::once_flag once;
    std::call_once(once,
                   [] { ::prctl(PR_SET_CHILD_SUBREAPER, 1, 0, 0, 0); });
#endif
}

void
noopSignalHandler(int)
{
}

/**
 * The child's safe-point sink: beacons, checkpoints, and — on the other
 * side of a fork — the frozen holder itself. reached() runs at commit
 * boundaries with the simulation quiescent and (epoch engine) the
 * worker pool drained for fork boundaries.
 */
struct CheckpointDriver final : SafePointSink
{
    int payloadFd = -1;
    int lifelineFd = -1;
    uint64_t ckptCycles = 0;
    uint64_t beaconCycles = 0;
    Cycles nextCkpt = ~Cycles(0);
    Cycles nextBeacon = 0;

    void
    writeFrame(char tag, uint64_t cycle, int32_t pid = 0)
    {
        char frame[1 + sizeof(uint64_t) + sizeof(int32_t)];
        frame[0] = tag;
        std::memcpy(frame + 1, &cycle, sizeof(cycle));
        size_t len = 1 + sizeof(cycle);
        if (tag == kFrameCkpt) {
            std::memcpy(frame + len, &pid, sizeof(pid));
            len += sizeof(pid);
        }
        // One write, <= PIPE_BUF: atomic. Best effort, like writeAll —
        // if the supervisor is gone the child dies of SIGPIPE, which is
        // the orphan behaviour we want anyway.
        for (;;) {
            ssize_t n = ::write(payloadFd, frame, len);
            if (n >= 0 || errno != EINTR)
                return;
        }
    }

    /** Holder side: park until the supervisor wakes us (SIGUSR1) or
     *  dies (lifeline EOF). SIGUSR1 is blocked process-wide
     *  (childCheckpointMain), so a wake sent before we reach ppoll
     *  stays *pending* and is delivered the instant ppoll atomically
     *  unblocks it — no lost-wakeup window. */
    void
    holdUntilWake()
    {
        sigset_t mask;
        ::pthread_sigmask(SIG_SETMASK, nullptr, &mask);
        ::sigdelset(&mask, SIGUSR1);
        for (;;) {
            struct pollfd p = {lifelineFd, POLLIN, 0};
            int r = ::ppoll(&p, 1, nullptr, &mask);
            if (r < 0 && errno == EINTR)
                return; // woken: this snapshot is the attempt now
            if (r >= 0)
                ::_exit(0); // lifeline EOF/HUP: supervisor is gone
        }
    }

    void
    reached(Cycles now) override
    {
        bool resumed_here = false;
        if (ckptCycles != 0 && now >= nextCkpt) {
            pid_t holder = ::fork();
            if (holder == 0) {
                holdUntilWake();
                // The snapshot predates whatever killed the incarnation
                // we are replacing; an injected mid-run crash would
                // deterministically re-fire at the same boundary.
                FaultInjector::disarmCycleCrashes();
                resumed_here = true;
            } else if (holder > 0) {
                writeFrame(kFrameCkpt, now, static_cast<int32_t>(holder));
            }
            // (fork failure: skip this checkpoint, retry next cadence.)
            nextCkpt = now + ckptCycles;
        }
        if (resumed_here || now >= nextBeacon) {
            // A woken holder announces progress immediately so the
            // parent's stall clock has a fresh reference.
            writeFrame(kFrameBeacon, now);
            nextBeacon = now + beaconCycles;
        }
        setSafePointDue(std::min(nextBeacon, nextCkpt), nextCkpt);
    }
};

/** Child side of the checkpointed protocol: arm the safe-point layer,
 *  run the body, wrap the classic JSON payload in an F frame. The
 *  resumed-holder path re-enters the body mid-flight via
 *  CheckpointDriver::reached and exits through this same tail. */
[[noreturn]] void
childCheckpointMain(int payload_fd, int lifeline_fd,
                    const std::function<RunMetrics()> &body,
                    MetricsRegistry *registry,
                    const SupervisorOptions &options)
{
    // SIGUSR1: install a no-op handler (the default action would
    // terminate) and block it; holders unblock it only inside ppoll.
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = noopSignalHandler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGUSR1, &action, nullptr);
    sigset_t block;
    sigemptyset(&block);
    sigaddset(&block, SIGUSR1);
    ::pthread_sigmask(SIG_BLOCK, &block, nullptr);

    CheckpointDriver driver;
    driver.payloadFd = payload_fd;
    driver.lifelineFd = lifeline_fd;
    driver.ckptCycles = options.checkpointCycles;
    driver.beaconCycles =
        driver.ckptCycles != 0
            ? std::max<uint64_t>(1, driver.ckptCycles / 4)
            : kStallBeaconCycles;
    driver.nextCkpt =
        driver.ckptCycles != 0 ? driver.ckptCycles : ~Cycles(0);
    driver.nextBeacon = 0; // announce liveness at the first boundary
    installSafePoint(&driver, 0, driver.nextCkpt);

    int code = 0;
    std::string payload;
    try {
        RunMetrics metrics = body();
        if (registry) {
            Json doc = Json::object();
            doc["metrics"] = BenchReport::toJson(metrics);
            doc["registry"] = registry->json();
            payload = doc.dumpCompact();
        } else {
            payload = BenchReport::toJson(metrics).dumpCompact();
        }
    } catch (const std::exception &e) {
        payload = e.what();
        code = kSupervisedExceptionExit;
    } catch (...) {
        payload = "unknown exception";
        code = kSupervisedExceptionExit;
    }
    uninstallSafePoint();

    char header[1 + sizeof(uint32_t)];
    header[0] = kFrameFinal;
    uint32_t len = static_cast<uint32_t>(payload.size());
    std::memcpy(header + 1, &len, sizeof(len));
    writeAll(payload_fd, std::string(header, sizeof(header)));
    writeAll(payload_fd, payload);
    ::close(payload_fd);
    ::_exit(code);
}

/** A live checkpoint holder, newest at the back of the chain. */
struct Holder
{
    pid_t pid = 0;
    uint64_t cycle = 0;
};

SupervisedResult
runSupervisedCheckpointed(const std::function<RunMetrics()> &body,
                          const SupervisorOptions &options)
{
    SupervisedResult result;

    int fds[2] = {-1, -1};
    int lifeline[2] = {-1, -1};
    pid_t active = -1;
    {
        std::lock_guard<std::mutex> lock(g_forkMutex);
        becomeSubreaper();
        if (::pipe(fds) != 0 || ::pipe(lifeline) != 0) {
            result.message =
                std::string("pipe failed: ") + std::strerror(errno);
            for (int fd : {fds[0], fds[1], lifeline[0], lifeline[1]}) {
                if (fd >= 0)
                    ::close(fd);
            }
            return result;
        }
        g_lifelineFds.push_back(lifeline[1]);
        active = ::fork();
        if (active < 0) {
            result.message =
                std::string("fork failed: ") + std::strerror(errno);
            g_lifelineFds.pop_back();
            ::close(fds[0]);
            ::close(fds[1]);
            ::close(lifeline[0]);
            ::close(lifeline[1]);
            return result;
        }
        if (active == 0) {
            ::close(fds[0]);
            // Our own registered write end included: only the
            // supervisor may hold the lifeline open, or holders never
            // see EOF when it dies.
            closeInheritedLifelines();
            childCheckpointMain(fds[1], lifeline[0], body,
                                options.registry, options);
        }
        ::close(fds[1]);
        ::close(lifeline[0]);
    }

    using Duration = SteadyClock::duration;
    const bool bounded = options.timeoutSeconds > 0.0;
    const bool stall_bounded = options.stallTimeoutSeconds > 0.0;
    const Duration timeout_dur =
        std::chrono::duration_cast<Duration>(
            std::chrono::duration<double>(options.timeoutSeconds));
    const Duration stall_dur = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(options.stallTimeoutSeconds));
    SteadyClock::time_point deadline = SteadyClock::now() + timeout_dur;
    SteadyClock::time_point last_progress = SteadyClock::now();

    std::deque<Holder> holders;
    std::vector<pid_t> graveyard; // SIGKILLed holders awaiting reap
    const unsigned keep = std::max(1u, options.checkpointKeep);

    // Holders are grandchildren while the active incarnation lives:
    // SIGKILL is immediate but the zombie is only reapable once it
    // reparents to us (subreaper) at the active's death, so reaping is
    // deferred and retried.
    auto kill_holder = [&](pid_t pid) {
        ::kill(pid, SIGKILL);
        graveyard.push_back(pid);
    };
    auto reap_graveyard = [&] {
        for (auto it = graveyard.begin(); it != graveyard.end();) {
            pid_t r = ::waitpid(*it, nullptr, WNOHANG);
            if (r == *it)
                it = graveyard.erase(it);
            else
                ++it; // 0 (alive) or ECHILD (not reparented yet): retry
        }
    };

    // Frame reassembly. buf may end mid-frame between reads (reads are
    // chunked); that is normal streaming state. Only after a death is
    // a leftover partial frame garbage — handle_death() drops it.
    std::string buf;
    std::string final_payload;
    uint32_t final_want = 0;
    bool final_header = false;
    bool final_done = false;

    auto parse_frames = [&] {
        for (;;) {
            if (final_header && !final_done) {
                size_t take = std::min<size_t>(
                    final_want - final_payload.size(), buf.size());
                final_payload.append(buf, 0, take);
                buf.erase(0, take);
                final_done = final_payload.size() == final_want;
                if (!final_done)
                    return;
            }
            if (buf.empty())
                return;
            char tag = buf[0];
            if (tag == kFrameBeacon) {
                if (buf.size() < 1 + sizeof(uint64_t))
                    return;
                buf.erase(0, 1 + sizeof(uint64_t));
            } else if (tag == kFrameCkpt) {
                if (buf.size() < 1 + sizeof(uint64_t) + sizeof(int32_t))
                    return;
                uint64_t cycle = 0;
                int32_t pid = 0;
                std::memcpy(&cycle, buf.data() + 1, sizeof(cycle));
                std::memcpy(&pid, buf.data() + 1 + sizeof(cycle),
                            sizeof(pid));
                buf.erase(0, 1 + sizeof(cycle) + sizeof(pid));
                holders.push_back(
                    {static_cast<pid_t>(pid), cycle});
                result.checkpointsTaken++;
                if (options.onCheckpoint)
                    options.onCheckpoint(cycle);
                while (holders.size() > keep) {
                    kill_holder(holders.front().pid);
                    holders.pop_front();
                }
            } else if (tag == kFrameFinal) {
                if (buf.size() < 1 + sizeof(uint32_t))
                    return;
                std::memcpy(&final_want, buf.data() + 1,
                            sizeof(final_want));
                buf.erase(0, 1 + sizeof(final_want));
                final_payload.clear();
                final_header = true;
                final_done = final_want == 0;
            } else {
                // Unreachable by construction (frames are atomic);
                // skip the byte rather than wedge.
                buf.erase(0, 1);
            }
        }
    };

    char rbuf[4096];
    int status = 0;
    bool killed_timeout = false;
    bool killed_stall = false;

    // Death verdict: resume from the newest live holder, or go
    // terminal. The active incarnation is already reaped when this
    // runs, so every holder has reparented to us and its own liveness
    // is observable with waitpid(WNOHANG).
    enum class After
    {
        Resumed,
        Terminal,
    };
    auto handle_death = [&](bool timed_out, bool stalled) -> After {
        // Drain what the dead incarnation flushed: last-second K
        // frames still register usable (older-state) holders. Then
        // drop the torn tail — the next incarnation starts clean.
        for (;;) {
            struct pollfd q = {fds[0], POLLIN, 0};
            if (::poll(&q, 1, 0) <= 0)
                break;
            ssize_t n = ::read(fds[0], rbuf, sizeof(rbuf));
            if (n <= 0)
                break;
            buf.append(rbuf, static_cast<size_t>(n));
        }
        parse_frames();
        reap_graveyard();

        int code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        bool abnormal = timed_out || stalled || WIFSIGNALED(status) ||
                        (code != 0 && code != kSupervisedExceptionExit) ||
                        (code == 0 && !final_done);
        if (!abnormal)
            return After::Terminal; // clean payload or exception

        while (!holders.empty() && result.resumes < options.maxResumes) {
            Holder h = holders.back();
            holders.pop_back();
            if (::waitpid(h.pid, nullptr, WNOHANG) != 0)
                continue; // holder itself died (OOM?): try an older one
            ::kill(h.pid, SIGUSR1);
            active = h.pid;
            result.resumes++;
            result.resumedFromCycle = h.cycle;
            result.cyclesSaved += h.cycle;
            if (options.onResume)
                options.onResume(h.cycle, result.resumes);
            // Fresh budgets for the continuation; forget the torn tail.
            buf.clear();
            final_payload.clear();
            final_header = final_done = false;
            final_want = 0;
            SteadyClock::time_point now = SteadyClock::now();
            deadline = now + timeout_dur;
            last_progress = now;
            return After::Resumed;
        }
        killed_timeout = timed_out;
        killed_stall = stalled;
        return After::Terminal;
    };

    for (;;) {
        SteadyClock::time_point now = SteadyClock::now();
        if (bounded && now >= deadline) {
            ::kill(active, SIGKILL);
            status = reap(active);
            if (handle_death(true, false) == After::Resumed)
                continue;
            break;
        }
        if (stall_bounded && now - last_progress >= stall_dur) {
            ::kill(active, SIGKILL);
            status = reap(active);
            if (handle_death(false, true) == After::Resumed)
                continue;
            break;
        }

        long long wait_ms = kDeathWatchTickMs;
        if (bounded) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - now);
            wait_ms = std::min<long long>(wait_ms, left.count() + 1);
        }
        if (stall_bounded) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    last_progress + stall_dur - now);
            wait_ms = std::min<long long>(wait_ms, left.count() + 1);
        }
        wait_ms = std::max<long long>(wait_ms, 0);

        struct pollfd p = {fds[0], POLLIN, 0};
        int pr = ::poll(&p, 1, static_cast<int>(wait_ms));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            // Unreachable poll failure: reclaim and report, never hang.
            ::kill(active, SIGKILL);
            status = reap(active);
            result.message = std::string("supervisor poll failed: ") +
                             std::strerror(errno);
            break;
        }
        if (pr > 0) {
            ssize_t n = ::read(fds[0], rbuf, sizeof(rbuf));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ::kill(active, SIGKILL);
                status = reap(active);
                result.message =
                    std::string("supervisor read failed: ") +
                    std::strerror(errno);
                break;
            }
            if (n > 0) {
                buf.append(rbuf, static_cast<size_t>(n));
                parse_frames();
                // Any bytes count as progress: only our child (or its
                // successor holder) holds the write end.
                last_progress = SteadyClock::now();
                if (final_done) {
                    // The child _exits right after the F frame.
                    status = reap(active);
                    if (handle_death(false, false) == After::Resumed)
                        continue;
                    break;
                }
                continue;
            }
            // n == 0: EOF — every write end is closed, so the active
            // incarnation *and* every holder are dead. Reap and decide
            // (the holder chain is all corpses; resume will skip them).
            status = reap(active);
            if (handle_death(false, false) == After::Resumed)
                continue;
            break;
        }
        // Poll tick: death watch for an incarnation that died without
        // EOF (holders keep the write end open by design).
        pid_t r = ::waitpid(active, &status, WNOHANG);
        if (r == active) {
            if (handle_death(false, false) == After::Resumed)
                continue;
            break;
        }
        reap_graveyard();
    }
    ::close(fds[0]);

    // Tear down the holder chain: SIGKILL everything still frozen,
    // close the lifeline (the EOF backstop for anything we missed),
    // and reap — the active incarnation is dead, so every holder has
    // reparented to this process and *must* be collectable. ECHILD
    // means it was already reaped (or adopted by init on non-Linux).
    {
        std::lock_guard<std::mutex> lock(g_forkMutex);
        g_lifelineFds.erase(std::remove(g_lifelineFds.begin(),
                                        g_lifelineFds.end(), lifeline[1]),
                            g_lifelineFds.end());
    }
    ::close(lifeline[1]);
    for (const Holder &h : holders)
        kill_holder(h.pid);
    holders.clear();
    for (pid_t pid : graveyard) {
        for (;;) {
            pid_t r = ::waitpid(pid, nullptr, 0);
            if (r == pid)
                break;
            if (r < 0 && errno == EINTR)
                continue;
            break; // ECHILD: already gone
        }
    }

    // Terminal decode, mirroring the classic supervisor's verdicts.
    if (!result.message.empty())
        return result; // pipe/poll failure recorded above
    if (killed_timeout) {
        result.timedOut = true;
        result.exitSignal = SIGKILL;
        result.message = "timed out after " +
                         std::to_string(options.timeoutSeconds) +
                         "s (child killed)";
        return result;
    }
    if (killed_stall) {
        result.stalled = true;
        result.crashed = true;
        result.exitSignal = SIGKILL;
        result.message = "stalled: no progress for " +
                         std::to_string(options.stallTimeoutSeconds) +
                         "s (child killed)";
        return result;
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        result.crashed = true;
        result.exitSignal = sig;
        const char *name = strsignal(sig);
        result.message = "child killed by signal " + std::to_string(sig) +
                         (name ? std::string(" (") + name + ")" : "");
        return result;
    }
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
    if (code == kSupervisedExceptionExit) {
        result.exitCode = code;
        result.message =
            final_payload.empty() ? "child exception" : final_payload;
        return result;
    }
    if (code != 0) {
        result.crashed = true;
        result.exitCode = code;
        result.message = "child exited with code " + std::to_string(code) +
                         " without reporting metrics";
        return result;
    }
    if (!final_done) {
        result.crashed = true;
        result.message =
            "child exited 0 without a complete final payload";
        return result;
    }

    Json parsed;
    std::string error;
    bool shape_ok = Json::parse(final_payload, parsed, &error);
    if (shape_ok) {
        const Json *metrics_doc = &parsed;
        if (options.registry) {
            shape_ok = parsed.isObject() && parsed.has("metrics") &&
                       parsed.has("registry");
            if (shape_ok)
                metrics_doc = &parsed.at("metrics");
        }
        shape_ok = shape_ok &&
                   BenchReport::fromJson(*metrics_doc, result.metrics);
    }
    if (!shape_ok) {
        result.crashed = true;
        result.message = "child exited 0 but its metrics did not parse" +
                         (error.empty() ? std::string() : ": " + error);
        return result;
    }
    if (options.registry &&
        !options.registry->mergeJson(parsed.at("registry"))) {
        result.crashed = true;
        result.message =
            "child exited 0 but its metrics registry did not parse";
        return result;
    }
    result.ok = true;
    return result;
}

} // namespace

std::mutex &
forkSerializeMutex()
{
    return g_forkMutex;
}

SupervisedResult
runSupervised(const std::function<RunMetrics()> &body, double timeout_s,
              MetricsRegistry *registry)
{
    SupervisedResult result;

    int fds[2];
    pid_t pid;
    {
        // pipe -> fork -> close(write end) happens atomically with
        // respect to every other runSupervised() call (see g_forkMutex
        // above): at any fork, the only write end open in the parent is
        // the forking call's own, so pipe EOF reliably means *this*
        // child is done. The child inherits the locked mutex but never
        // touches it (it runs childMain and _exits).
        std::lock_guard<std::mutex> lock(g_forkMutex);
        if (::pipe(fds) != 0) {
            result.message = std::string("pipe failed: ") +
                             std::strerror(errno);
            return result;
        }

        pid = ::fork();
        if (pid < 0) {
            result.message = std::string("fork failed: ") +
                             std::strerror(errno);
            ::close(fds[0]);
            ::close(fds[1]);
            return result;
        }
        if (pid == 0) {
            ::close(fds[0]);
            childMain(fds[1], body, registry);
        }
        ::close(fds[1]);
    }

    // Read the child's payload until EOF or the deadline. EOF arrives
    // when the child _exits *or* dies abnormally (the kernel closes its
    // end either way), so this loop doubles as the primary death watch;
    // a periodic waitpid(WNOHANG) backs it up for the one case EOF
    // cannot cover — a grandchild forked by the job body outliving the
    // child with an inherited copy of the write end.
    SteadyClock::time_point deadline{};
    bool bounded = timeout_s > 0.0;
    if (bounded) {
        deadline = SteadyClock::now() +
                   std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(timeout_s));
    }

    std::string output;
    char buf[4096];
    int status = 0;
    bool reaped = false;
    for (;;) {
        int wait_ms = kDeathWatchTickMs;
        if (bounded) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - SteadyClock::now());
            if (left.count() <= 0) {
                result.timedOut = true;
                break;
            }
            wait_ms = static_cast<int>(std::min<long long>(
                left.count() + 1, kDeathWatchTickMs));
        }
        struct pollfd p = {fds[0], POLLIN, 0};
        int pr = ::poll(&p, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break; // poll error: fall through to reap with what we have
        }
        if (pr > 0) {
            ssize_t n = ::read(fds[0], buf, sizeof(buf));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (n == 0)
                break; // EOF: the child is done (or dead)
            output.append(buf, static_cast<size_t>(n));
            continue;
        }
        // Poll tick expired without data: the deadline is re-checked at
        // the top of the loop; here, notice a child that died without
        // its EOF ever reaching us.
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) {
            reaped = true;
            // Drain whatever the child flushed before dying.
            for (;;) {
                struct pollfd q = {fds[0], POLLIN, 0};
                if (::poll(&q, 1, 0) <= 0)
                    break;
                ssize_t n = ::read(fds[0], buf, sizeof(buf));
                if (n <= 0)
                    break;
                output.append(buf, static_cast<size_t>(n));
            }
            break;
        }
    }
    ::close(fds[0]);

    if (result.timedOut) {
        // A timeout really reclaims the attempt: the child is killed
        // outright and reaped, not abandoned to keep burning a core.
        ::kill(pid, SIGKILL);
        reap(pid);
        result.message = "timed out after " + std::to_string(timeout_s) +
                         "s (child killed)";
        result.exitSignal = SIGKILL;
        return result;
    }

    if (!reaped)
        status = reap(pid);
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        result.crashed = true;
        result.exitSignal = sig;
        const char *name = strsignal(sig);
        result.message = "child killed by signal " + std::to_string(sig) +
                         (name ? std::string(" (") + name + ")" : "");
        return result;
    }

    int code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
    if (code == kSupervisedExceptionExit) {
        result.exitCode = code;
        result.message = output.empty() ? "child exception" : output;
        return result;
    }
    if (code != 0) {
        // Silent death: the body (or an injected fault) called _exit
        // without reporting anything.
        result.crashed = true;
        result.exitCode = code;
        result.message = "child exited with code " + std::to_string(code) +
                         " without reporting metrics";
        return result;
    }

    Json parsed;
    std::string error;
    bool shape_ok = Json::parse(output, parsed, &error);
    if (shape_ok) {
        // Wrapped format when a registry rides along (see childMain);
        // bare BenchReport::toJson otherwise.
        const Json *metrics_doc = &parsed;
        if (registry) {
            shape_ok = parsed.isObject() && parsed.has("metrics") &&
                       parsed.has("registry");
            if (shape_ok)
                metrics_doc = &parsed.at("metrics");
        }
        shape_ok = shape_ok &&
                   BenchReport::fromJson(*metrics_doc, result.metrics);
    }
    if (!shape_ok) {
        result.crashed = true;
        result.message = "child exited 0 but its metrics did not parse" +
                         (error.empty() ? std::string()
                                        : ": " + error);
        return result;
    }
    if (registry && !registry->mergeJson(parsed.at("registry"))) {
        result.crashed = true;
        result.message =
            "child exited 0 but its metrics registry did not parse";
        return result;
    }
    result.ok = true;
    return result;
}

SupervisedResult
runSupervised(const std::function<RunMetrics()> &body,
              const SupervisorOptions &options)
{
    // Both checkpoint knobs off: the classic unframed protocol,
    // byte-for-byte (the bit-identity contract of ATL_CKPT_CYCLES
    // unset).
    if (options.checkpointCycles == 0 &&
        options.stallTimeoutSeconds <= 0.0) {
        return runSupervised(body, options.timeoutSeconds,
                             options.registry);
    }
    return runSupervisedCheckpointed(body, options);
}

// ---------------------------------------------------------------------
// SweepSignalGuard
// ---------------------------------------------------------------------

namespace
{

/** Set by the handler; read by the sweep engine's worker threads
 *  between jobs. A lock-free atomic rather than volatile sig_atomic_t:
 *  the handler can run on any thread while every pool worker polls the
 *  flag, and volatile gives neither cross-thread visibility nor
 *  data-race freedom. Lock-free atomic stores are async-signal-safe. */
std::atomic<int> g_interrupted{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free flag");
/** Live guard count; handlers installed on 0 -> 1, restored on 1 -> 0.
 *  Guards are constructed on the sweep's calling thread only, so a
 *  plain counter is enough. */
int g_guardDepth = 0;

void
onSweepSignal(int)
{
    g_interrupted.store(1, std::memory_order_relaxed);
}

} // namespace

SweepSignalGuard::SweepSignalGuard() : _oldInt(), _oldTerm()
{
    if (g_guardDepth++ > 0)
        return;
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = onSweepSignal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &_oldInt);
    ::sigaction(SIGTERM, &action, &_oldTerm);
}

SweepSignalGuard::~SweepSignalGuard()
{
    if (--g_guardDepth > 0)
        return;
    ::sigaction(SIGINT, &_oldInt, nullptr);
    ::sigaction(SIGTERM, &_oldTerm, nullptr);
    g_interrupted.store(0, std::memory_order_relaxed);
}

bool
SweepSignalGuard::interrupted()
{
    return g_interrupted.load(std::memory_order_relaxed) != 0;
}

} // namespace atl
