/**
 * @file
 * Process isolation for sweep jobs. A sweep cell that SIGSEGVs, aborts,
 * silently _exit()s, is OOM-killed or wedges must cost the sweep one
 * failed cell, never the process: runSupervised() forks a child that
 * executes the job body and marshals its RunMetrics back over a pipe as
 * JSON (BenchReport::toJson / fromJson), while the parent reads with a
 * deadline, reclaims a wedged child with SIGKILL, and reaps it with
 * waitpid — turning every way a child can die into an ordinary,
 * attributable SupervisedResult.
 *
 * The checkpointed mode (SupervisorOptions::checkpointCycles, env
 * ATL_CKPT_CYCLES) upgrades "failed cell" to "resumed cell": at
 * commit-boundary safe points (runtime/checkpoint.hh) the child forks
 * frozen *checkpoint holders* — copy-on-write snapshots of the entire
 * process image, fiber stacks included — and the parent keeps the
 * newest few alive. When the child crashes, stalls, or times out, the
 * parent wakes the newest holder with SIGUSR1 and the simulation
 * continues from that snapshot instead of restarting from cycle zero;
 * because the image is exact and the simulation deterministic, the
 * resumed RunMetrics and telemetry are bit-identical to an
 * uninterrupted run. The same mode carries framed progress beacons
 * that feed a stall watchdog (stallTimeoutSeconds, env
 * ATL_SWEEP_STALL_TIMEOUT) able to tell a wedged cell from a slow one.
 * Both knobs default off, in which case runSupervised is byte-for-byte
 * the classic single-shot supervisor.
 *
 * The companion SweepSignalGuard traps SIGINT/SIGTERM for the duration
 * of a sweep so an interrupted run can flush a partial report (and its
 * journal survives for resume) instead of vanishing mid-write.
 */

#ifndef ATL_SIM_SUPERVISOR_HH
#define ATL_SIM_SUPERVISOR_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "atl/sim/experiment.hh"

namespace atl
{

class MetricsRegistry;

/** Everything the parent learned about one supervised attempt. */
struct SupervisedResult
{
    /** Child exited 0 and its metrics parsed. */
    bool ok = false;
    /** Valid only when ok. */
    RunMetrics metrics;
    /** Human-readable failure description (exception text from the
     *  child, signal name, exit code, or timeout note). */
    std::string message;
    /** Deadline expired; the child was killed with SIGKILL and reaped. */
    bool timedOut = false;
    /** The child died abnormally: killed by a signal, or exited nonzero
     *  without reporting an exception (silent _exit). */
    bool crashed = false;
    /** Terminating signal (WTERMSIG), 0 when the child exited. */
    int exitSignal = 0;
    /** Exit status (WEXITSTATUS), 0 when killed by a signal. */
    int exitCode = 0;
    /** The stall watchdog killed the attempt: progress beacons stopped
     *  for stallTimeoutSeconds while the wall-clock deadline had not
     *  expired. Implies crashed (the kill is a SIGKILL). */
    bool stalled = false;
    /** Checkpoint holders forked across the attempt, resumes included
     *  (checkpointed mode only). */
    uint64_t checkpointsTaken = 0;
    /** Times the attempt was resumed from a checkpoint holder. */
    unsigned resumes = 0;
    /** Simulated cycle of the newest resume (0 when none). */
    uint64_t resumedFromCycle = 0;
    /** Simulated cycles *not* re-executed thanks to resumes: the sum of
     *  resumed-from cycles (each resume skips re-running [0, cycle)). */
    uint64_t cyclesSaved = 0;
};

/** Knobs for one supervised attempt (the richer face of
 *  runSupervised; the 3-argument overload below is the classic
 *  subset). */
struct SupervisorOptions
{
    /** Wall-clock deadline in seconds; 0 disables. In checkpointed
     *  mode the deadline restarts at every resume (each continuation
     *  gets a full budget), bounded by maxResumes. */
    double timeoutSeconds = 0.0;
    /** Merge the child's metrics-registry updates back on success. */
    MetricsRegistry *registry = nullptr;
    /** Checkpoint cadence in simulated cycles: the child forks a
     *  frozen holder at the first safe point past each multiple.
     *  0 disables checkpointing (the default — and with
     *  stallTimeoutSeconds also 0, the attempt runs the classic
     *  unframed protocol, byte-identical to the 3-argument overload). */
    uint64_t checkpointCycles = 0;
    /** Holder-chain depth: the newest N holders are kept alive; older
     *  ones are SIGKILLed as new checkpoints arrive. */
    unsigned checkpointKeep = 2;
    /** Kill the child when no progress beacon (a strictly newer
     *  simulated cycle) arrives for this long; 0 disables. Beacons
     *  flow whenever checkpointing *or* this watchdog is on. */
    double stallTimeoutSeconds = 0.0;
    /** Resume budget: after this many holder wakes the next death is
     *  terminal. Bounds the deadline-restart loop. */
    unsigned maxResumes = 16;
    /** Called in the parent as each checkpoint frame arrives (cycle of
     *  the holder's snapshot). Used by the sweep engine to emit
     *  SweepCheckpoint telemetry. */
    std::function<void(uint64_t cycle)> onCheckpoint;
    /** Called in the parent at each resume (snapshot cycle, resume
     *  ordinal starting at 1). */
    std::function<void(uint64_t cycle, unsigned resumes)> onResume;
};

/**
 * Run one job body in a forked child and reap it.
 *
 * The child runs body(), serialises the metrics as JSON into a pipe and
 * _exit()s; an exception is marshalled as its what() text with a
 * reserved exit code. The parent polls the pipe with the given deadline
 * (0 disables), SIGKILLs the child when the deadline expires, and
 * always waitpid()s — no zombies, no abandoned threads. Fork-fatal
 * setup errors (pipe/fork failure) come back as ordinary failures.
 *
 * The body must be self-contained (sweep-job contract): nothing it
 * mutates in the child is visible to the parent except the marshalled
 * metrics.
 *
 * Safe to call concurrently from sweep-pool workers: pipe creation,
 * fork, and the parent-side close of the write end are serialised
 * process-wide, so no child ever inherits a sibling attempt's pipe
 * write end (which would delay that sibling's EOF death-watch), and a
 * periodic waitpid(WNOHANG) detects child death independently of the
 * pipe. Because the fork happens in a multi-threaded process, the
 * child formally gets only async-signal-safe guarantees from POSIX;
 * running a C++ body there assumes glibc (whose fork handlers
 * reinitialise malloc), and the body must not block on a process-wide
 * lock another thread could hold at fork time — see docs/INTERNALS.md.
 *
 * When `registry` is set, the body's metrics-registry updates — which
 * would otherwise die with the child — are marshalled too: the child
 * wraps its payload as {"metrics": ..., "registry": registry->json()}
 * and the parent folds the snapshot back into the same registry with
 * mergeJson() on success. A failed attempt's updates are discarded
 * with the child, which is exactly the retry semantics the in-process
 * path cannot offer.
 */
SupervisedResult runSupervised(const std::function<RunMetrics()> &body,
                               double timeout_s,
                               MetricsRegistry *registry = nullptr);

/**
 * The full-options overload. With checkpointCycles and
 * stallTimeoutSeconds both 0 this is exactly the classic overload;
 * with either set, the attempt runs the framed checkpoint/stall
 * protocol:
 *
 *   - The child installs a safe-point sink (runtime/checkpoint.hh) and
 *     speaks a framed wire protocol on the payload pipe: 'B' progress
 *     beacons (current simulated cycle), 'K' checkpoint announcements
 *     (cycle + holder pid), and one final 'F' frame wrapping the
 *     classic JSON payload. Each B/K frame is a single write() under
 *     PIPE_BUF, so frames are never torn even when the writer is
 *     SIGKILLed mid-run.
 *
 *   - A checkpoint forks a *holder*: the fork child parks in ppoll on
 *     a lifeline pipe with SIGUSR1 unblocked only inside the wait
 *     (signals sent early stay pending — no wake can be lost). SIGUSR1
 *     resumes the simulation from the snapshot; lifeline EOF means the
 *     supervisor itself died and the orphan _exits. The parent keeps
 *     the newest checkpointKeep holders and SIGKILLs older ones.
 *
 *   - On child death (crash, silent exit, stall kill, timeout kill)
 *     the parent wakes the newest holder instead of reporting failure,
 *     up to maxResumes times; the woken holder *becomes* the child —
 *     it keeps simulating, checkpointing, and finally writes the 'F'
 *     payload. SupervisedResult carries the accounting
 *     (checkpointsTaken, resumes, resumedFromCycle, cyclesSaved).
 *
 *   - The supervisor marks itself a child subreaper
 *     (PR_SET_CHILD_SUBREAPER) so holders — grandchildren while the
 *     active child lives — reparent to it when the child dies and can
 *     always be reaped: no holder outlives the call.
 *
 * Determinism contract: the snapshot is the exact process image and
 * the safe-point layer never perturbs simulation state, so a resumed
 * run's RunMetrics and telemetry are bit-identical to an uninterrupted
 * one (tests/sim/test_checkpoint.cc pins this against the hot-path
 * identity goldens).
 */
SupervisedResult runSupervised(const std::function<RunMetrics()> &body,
                               const SupervisorOptions &options);

/** Exit code the child uses to report a caught exception (its what()
 *  text travels over the pipe). Distinct from any small code a silent
 *  `_exit` fault is likely to use. */
inline constexpr int kSupervisedExceptionExit = 113;

/**
 * The process-wide mutex serialising pipe() -> fork() -> close(write
 * end) inside runSupervised(). Any *other* code that forks from a
 * process that may concurrently run supervised attempts (the sweep
 * fabric forking its worker pool) must hold this mutex across its own
 * pipe/fork/close window for the same reason runSupervised does:
 * otherwise its child would inherit an in-flight attempt's pipe write
 * end and delay that attempt's EOF death-watch (and vice versa). The
 * forked child inherits the locked mutex but must simply never touch
 * it (it proceeds to its own work or _exit, like childMain does).
 */
std::mutex &forkSerializeMutex();

/**
 * RAII trap for SIGINT/SIGTERM around a sweep. While at least one
 * guard is alive, the first signal sets a process-wide flag instead of
 * killing the process; the sweep engine stops claiming new jobs, the
 * bench flushes a partial (complete=false) report, and a journalled
 * sweep resumes from disk on the next run. Nested guards share one
 * installation; the outermost destructor restores the previous
 * handlers and clears the flag.
 */
class SweepSignalGuard
{
  public:
    SweepSignalGuard();
    ~SweepSignalGuard();

    SweepSignalGuard(const SweepSignalGuard &) = delete;
    SweepSignalGuard &operator=(const SweepSignalGuard &) = delete;

    /** True once SIGINT/SIGTERM arrived under any live guard. */
    static bool interrupted();

  private:
    struct sigaction _oldInt;
    struct sigaction _oldTerm;
};

} // namespace atl

#endif // ATL_SIM_SUPERVISOR_HH
