/**
 * @file
 * Process isolation for sweep jobs. A sweep cell that SIGSEGVs, aborts,
 * silently _exit()s, is OOM-killed or wedges must cost the sweep one
 * failed cell, never the process: runSupervised() forks a child that
 * executes the job body and marshals its RunMetrics back over a pipe as
 * JSON (BenchReport::toJson / fromJson), while the parent reads with a
 * deadline, reclaims a wedged child with SIGKILL, and reaps it with
 * waitpid — turning every way a child can die into an ordinary,
 * attributable SupervisedResult.
 *
 * The companion SweepSignalGuard traps SIGINT/SIGTERM for the duration
 * of a sweep so an interrupted run can flush a partial report (and its
 * journal survives for resume) instead of vanishing mid-write.
 */

#ifndef ATL_SIM_SUPERVISOR_HH
#define ATL_SIM_SUPERVISOR_HH

#include <csignal>
#include <functional>
#include <mutex>
#include <string>

#include "atl/sim/experiment.hh"

namespace atl
{

class MetricsRegistry;

/** Everything the parent learned about one supervised attempt. */
struct SupervisedResult
{
    /** Child exited 0 and its metrics parsed. */
    bool ok = false;
    /** Valid only when ok. */
    RunMetrics metrics;
    /** Human-readable failure description (exception text from the
     *  child, signal name, exit code, or timeout note). */
    std::string message;
    /** Deadline expired; the child was killed with SIGKILL and reaped. */
    bool timedOut = false;
    /** The child died abnormally: killed by a signal, or exited nonzero
     *  without reporting an exception (silent _exit). */
    bool crashed = false;
    /** Terminating signal (WTERMSIG), 0 when the child exited. */
    int exitSignal = 0;
    /** Exit status (WEXITSTATUS), 0 when killed by a signal. */
    int exitCode = 0;
};

/**
 * Run one job body in a forked child and reap it.
 *
 * The child runs body(), serialises the metrics as JSON into a pipe and
 * _exit()s; an exception is marshalled as its what() text with a
 * reserved exit code. The parent polls the pipe with the given deadline
 * (0 disables), SIGKILLs the child when the deadline expires, and
 * always waitpid()s — no zombies, no abandoned threads. Fork-fatal
 * setup errors (pipe/fork failure) come back as ordinary failures.
 *
 * The body must be self-contained (sweep-job contract): nothing it
 * mutates in the child is visible to the parent except the marshalled
 * metrics.
 *
 * Safe to call concurrently from sweep-pool workers: pipe creation,
 * fork, and the parent-side close of the write end are serialised
 * process-wide, so no child ever inherits a sibling attempt's pipe
 * write end (which would delay that sibling's EOF death-watch), and a
 * periodic waitpid(WNOHANG) detects child death independently of the
 * pipe. Because the fork happens in a multi-threaded process, the
 * child formally gets only async-signal-safe guarantees from POSIX;
 * running a C++ body there assumes glibc (whose fork handlers
 * reinitialise malloc), and the body must not block on a process-wide
 * lock another thread could hold at fork time — see docs/INTERNALS.md.
 *
 * When `registry` is set, the body's metrics-registry updates — which
 * would otherwise die with the child — are marshalled too: the child
 * wraps its payload as {"metrics": ..., "registry": registry->json()}
 * and the parent folds the snapshot back into the same registry with
 * mergeJson() on success. A failed attempt's updates are discarded
 * with the child, which is exactly the retry semantics the in-process
 * path cannot offer.
 */
SupervisedResult runSupervised(const std::function<RunMetrics()> &body,
                               double timeout_s,
                               MetricsRegistry *registry = nullptr);

/** Exit code the child uses to report a caught exception (its what()
 *  text travels over the pipe). Distinct from any small code a silent
 *  `_exit` fault is likely to use. */
inline constexpr int kSupervisedExceptionExit = 113;

/**
 * The process-wide mutex serialising pipe() -> fork() -> close(write
 * end) inside runSupervised(). Any *other* code that forks from a
 * process that may concurrently run supervised attempts (the sweep
 * fabric forking its worker pool) must hold this mutex across its own
 * pipe/fork/close window for the same reason runSupervised does:
 * otherwise its child would inherit an in-flight attempt's pipe write
 * end and delay that attempt's EOF death-watch (and vice versa). The
 * forked child inherits the locked mutex but must simply never touch
 * it (it proceeds to its own work or _exit, like childMain does).
 */
std::mutex &forkSerializeMutex();

/**
 * RAII trap for SIGINT/SIGTERM around a sweep. While at least one
 * guard is alive, the first signal sets a process-wide flag instead of
 * killing the process; the sweep engine stops claiming new jobs, the
 * bench flushes a partial (complete=false) report, and a journalled
 * sweep resumes from disk on the next run. Nested guards share one
 * installation; the outermost destructor restores the previous
 * handlers and clears the flag.
 */
class SweepSignalGuard
{
  public:
    SweepSignalGuard();
    ~SweepSignalGuard();

    SweepSignalGuard(const SweepSignalGuard &) = delete;
    SweepSignalGuard &operator=(const SweepSignalGuard &) = delete;

    /** True once SIGINT/SIGTERM arrived under any live guard. */
    static bool interrupted();

  private:
    struct sigaction _oldInt;
    struct sigaction _oldTerm;
};

} // namespace atl

#endif // ATL_SIM_SUPERVISOR_HH
