#include "atl/sim/trace.hh"

#include <istream>
#include <ostream>

#include "atl/util/logging.hh"

namespace atl
{

namespace
{

/** Binary format magic ("ATLT" + version 1). */
constexpr uint32_t traceMagic = 0x41544c31;

} // namespace

void
TraceBuffer::save(std::ostream &os) const
{
    uint32_t magic = traceMagic;
    uint64_t count = _records.size();
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(reinterpret_cast<const char *>(_records.data()),
             static_cast<std::streamsize>(count * sizeof(TraceRecord)));
}

bool
TraceBuffer::load(std::istream &is)
{
    uint32_t magic = 0;
    uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (!is || magic != traceMagic)
        return false;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        return false;
    _records.resize(count);
    is.read(reinterpret_cast<char *>(_records.data()),
            static_cast<std::streamsize>(count * sizeof(TraceRecord)));
    if (!is) {
        _records.clear();
        return false;
    }
    return true;
}

TraceRecorder::TraceRecorder(Machine &machine, TraceBuffer &buffer)
    : _machine(machine)
{
    _machine.setAccessHook(
        [&buffer](CpuId cpu, ThreadId tid, VAddr va, AccessType type) {
            buffer.append({va, tid, cpu, type});
        });
}

TraceRecorder::~TraceRecorder()
{
    _machine.setAccessHook({});
}

TraceReplayer::TraceReplayer(const HierarchyConfig &hierarchy,
                             unsigned n_cpus, uint64_t page_bytes,
                             PagePlacement placement)
    : _config(hierarchy), _numCpus(n_cpus), _pageBytes(page_bytes),
      _placement(placement)
{
    atl_assert(n_cpus >= 1, "replayer needs at least one cpu");
}

ReplayResult
TraceReplayer::replay(const TraceBuffer &trace)
{
    // Fresh VM and caches: pages fault in trace order, exactly as the
    // live run faulted them.
    uint64_t colors =
        std::max<uint64_t>(1, _config.l2.sizeBytes / _pageBytes);
    Vm vm(_pageBytes, colors, _placement);
    std::vector<std::unique_ptr<Hierarchy>> cpus;
    for (unsigned c = 0; c < _numCpus; ++c)
        cpus.push_back(std::make_unique<Hierarchy>(_config));

    for (const TraceRecord &record : trace.records()) {
        atl_assert(record.cpu < _numCpus,
                   "trace cpu ", record.cpu, " exceeds replay width");
        PAddr pa = vm.translate(record.va);
        cpus[record.cpu]->access(pa, record.type);
    }

    ReplayResult result;
    result.references = trace.size();
    for (const auto &hier : cpus) {
        result.l1dMisses += hier->l1d().stats().misses();
        result.l1iMisses += hier->l1i().stats().misses();
        result.l2Refs += hier->l2().stats().refs;
        result.l2Misses += hier->l2().stats().misses();
    }
    return result;
}

} // namespace atl
