/**
 * @file
 * Reference-trace recording and replay.
 *
 * The paper's lineage of cache models (Thiebaut & Stone, Agarwal et
 * al.) was driven by address traces analysed off-line; Shade produced
 * such traces on-line. This module closes the loop for our simulator:
 * a TraceRecorder captures every modelled reference a machine issues
 * (with thread and processor attribution), and a TraceReplayer pushes a
 * recorded trace through an arbitrary cache hierarchy and page
 * placement — enabling off-line design-space exploration (line size,
 * associativity, placement) over exactly the reference stream a
 * workload produced, without re-running the workload.
 */

#ifndef ATL_SIM_TRACE_HH
#define ATL_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "atl/mem/hierarchy.hh"
#include "atl/mem/vm.hh"
#include "atl/runtime/machine.hh"

namespace atl
{

/** One recorded memory reference (one L1-line-sized access). */
struct TraceRecord
{
    /** Virtual address of the reference. */
    VAddr va = 0;
    /** Issuing thread (InvalidThreadId for runtime-internal traffic). */
    ThreadId tid = InvalidThreadId;
    /** Processor that issued it. */
    CpuId cpu = 0;
    /** Load / Store / IFetch. */
    AccessType type = AccessType::Load;
};

/**
 * A recorded reference stream. Plain vector storage with binary
 * save/load for re-use across processes.
 */
class TraceBuffer
{
  public:
    /** Append one record. */
    void append(const TraceRecord &record) { _records.push_back(record); }

    /** All records, in issue order. */
    const std::vector<TraceRecord> &records() const { return _records; }

    /** Number of records. */
    size_t size() const { return _records.size(); }

    /** Drop everything. */
    void clear() { _records.clear(); }

    /** Serialise to a binary stream (magic + count + raw records). */
    void save(std::ostream &os) const;

    /**
     * Load from a binary stream produced by save().
     * @retval true on success (false: bad magic or truncated data)
     */
    bool load(std::istream &is);

  private:
    std::vector<TraceRecord> _records;
};

/**
 * Captures every modelled reference a machine issues. Attach before
 * running; detach (destroy) before the machine dies.
 */
class TraceRecorder
{
  public:
    /**
     * @param machine machine to record (must outlive the recorder)
     * @param buffer destination (must outlive the recorder)
     */
    TraceRecorder(Machine &machine, TraceBuffer &buffer);
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

  private:
    Machine &_machine;
};

/** Result of replaying a trace through one configuration. */
struct ReplayResult
{
    uint64_t references = 0;
    uint64_t l1dMisses = 0;
    uint64_t l1iMisses = 0;
    uint64_t l2Refs = 0;
    uint64_t l2Misses = 0;

    /** E-cache miss ratio. */
    double
    l2MissRatio() const
    {
        return l2Refs ? static_cast<double>(l2Misses) /
                            static_cast<double>(l2Refs)
                      : 0.0;
    }
};

/**
 * Replays a trace through a per-processor hierarchy built from an
 * arbitrary configuration, with a fresh simulated VM (pages fault in
 * trace order, as they did live). Uniprocessor replay of an identical
 * configuration reproduces the live E-cache miss counts exactly;
 * multiprocessor replay is approximate because coherence invalidations
 * are not re-enacted.
 */
class TraceReplayer
{
  public:
    /**
     * @param hierarchy cache geometry to explore
     * @param n_cpus number of per-processor hierarchies to build (must
     *        cover every cpu id appearing in the trace)
     * @param page_bytes VM page size
     * @param placement page placement policy
     */
    TraceReplayer(const HierarchyConfig &hierarchy, unsigned n_cpus = 1,
                  uint64_t page_bytes = 8192,
                  PagePlacement placement = PagePlacement::BinHopping);

    /** Push every record through the configured caches. */
    ReplayResult replay(const TraceBuffer &trace);

  private:
    HierarchyConfig _config;
    unsigned _numCpus;
    uint64_t _pageBytes;
    PagePlacement _placement;
};

} // namespace atl

#endif // ATL_SIM_TRACE_HH
