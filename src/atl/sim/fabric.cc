#include "atl/sim/fabric.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <iostream>
#include <limits>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "atl/obs/event_log.hh"
#include "atl/obs/metrics.hh"
#include "atl/sim/journal.hh"
#include "atl/sim/supervisor.hh"
#include "atl/util/logging.hh"

namespace atl
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

constexpr size_t kNoCell = std::numeric_limits<size_t>::max();

/** Coordinator poll tick: bounds how long a worker death or a newly
 *  idle worker can go unnoticed. */
constexpr int kFabricTickMs = 20;

/** Grace between asking workers to exit and SIGKILLing stragglers. */
constexpr double kExitGraceSeconds = 5.0;

/** Host CLOCK_MONOTONIC in microseconds: system-wide on Linux, so
 *  attempt stamps from different worker processes are comparable —
 *  which is what lets merged-shard dedupe pick the earliest attempt. */
uint64_t
monotonicMicros()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
           static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
}

/** Write one line (terminated here) to a pipe, retrying EINTR. Any
 *  other error means the peer is gone; the caller's death machinery
 *  (EOF / waitpid / SIGPIPE-as-EPIPE) picks it up. */
bool
writeLine(int fd, std::string line)
{
    line += '\n';
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Seeded per-(slot, generation, cell) chaos roll for
 *  FaultPlan::workerCrashProb. 0 = survive, 1 = SIGKILL before running
 *  the cell (it is lost and re-leased), 2 = SIGKILL right after
 *  journalling it (the shard keeps a record the coordinator never saw,
 *  exercising duplicate-tolerant merge). */
int
workerCrashRoll(double prob, uint64_t seed, unsigned slot, unsigned gen,
                size_t cell)
{
    if (prob <= 0.0)
        return 0;
    uint64_t z = SweepRunner::deriveSeed(
        SweepRunner::deriveSeed(
            SweepRunner::deriveSeed(seed ^ 0x9e3779b97f4a7c15ull, slot),
            gen),
        cell);
    double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
    if (u >= prob)
        return 0;
    return (z & 1) ? 1 : 2;
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/** Serialises writes to the worker's event pipe between the lease loop
 *  and the heartbeat thread — the only two writers this pipe has, so
 *  holding the mutex across the whole writeLine loop keeps lines from
 *  interleaving even when a cell report (RunMetrics plus an optional
 *  registry snapshot) grows past PIPE_BUF's atomic-write guarantee. */
struct EventPipe
{
    int fd = -1;
    std::mutex mutex;

    void
    send(const Json &msg)
    {
        std::string line = msg.dumpCompact();
        std::lock_guard<std::mutex> lock(mutex);
        if (!writeLine(fd, std::move(line))) {
            // Coordinator gone (EPIPE with SIGPIPE ignored): an
            // orphaned worker has nobody to report to — stop instead
            // of burning the host.
            ::_exit(0);
        }
    }
};

/** Blocking newline-framed reader for the worker's command pipe. */
class LineReader
{
  public:
    explicit LineReader(int fd) : _fd(fd) {}

    /** @retval false on EOF or a read error (coordinator died) */
    bool
    next(std::string &line)
    {
        for (;;) {
            size_t nl = _buf.find('\n');
            if (nl != std::string::npos) {
                line.assign(_buf, 0, nl);
                _buf.erase(0, nl + 1);
                return true;
            }
            char tmp[4096];
            ssize_t n = ::read(_fd, tmp, sizeof(tmp));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            _buf.append(tmp, static_cast<size_t>(n));
        }
    }

  private:
    int _fd;
    std::string _buf;
};

/** Everything fabricWorkerMain needs, bundled for readability. */
struct WorkerSetup
{
    unsigned slot = 0;
    unsigned gen = 0;
    int cmdFd = -1;
    int evtFd = -1;
    uint64_t configHash = 0;
    std::string shardPath;
};

/**
 * Worker process main loop: journal shard + heartbeat thread + lease
 * loop. Runs in a fresh fork of the coordinator; never returns.
 */
[[noreturn]] void
fabricWorkerMain(const WorkerSetup &setup,
                 const std::vector<SweepJob> &sweep,
                 const FabricOptions &options)
{
    EventPipe evt;
    evt.fd = setup.evtFd;

    // The shard journal: global cell indices under the fabric's own
    // config hash, so a respawned generation (same path, matching
    // header) appends to its predecessor's records and a coordinator
    // restart replays them all.
    SweepJournal shard(options.benchName, setup.shardPath);
    shard.beginSweep(setup.configHash, sweep.size());

    {
        Json hello = Json::object();
        hello["kind"] = Json("hello");
        hello["worker"] = Json(static_cast<uint64_t>(setup.slot));
        hello["pid"] = Json(static_cast<int64_t>(::getpid()));
        evt.send(hello);
    }

    // Heartbeat thread: liveness proof while a long cell runs. The
    // counter is relaxed — the beat's payload is advisory; the beat
    // itself is the signal.
    std::atomic<uint64_t> cells_done{0};
    std::thread([&evt, &cells_done, &options] {
        for (;;) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::max(options.heartbeatSeconds, 0.005)));
            Json hb = Json::object();
            hb["kind"] = Json("hb");
            hb["done"] =
                Json(cells_done.load(std::memory_order_relaxed));
            evt.send(hb);
        }
    }).detach();

    double crash_prob = options.faults.workerCrashProb;
    LineReader commands(setup.cmdFd);
    std::string line;
    while (commands.next(line)) {
        Json cmd;
        if (line.empty() || !Json::parse(line, cmd) || !cmd.isObject() ||
            !cmd.at("kind").isString())
            continue;
        const std::string &kind = cmd.at("kind").asString();
        if (kind == "exit")
            break;
        if (kind != "lease" || !cmd.at("cells").isArray())
            continue;

        for (const Json &item : cmd.at("cells").items()) {
            size_t gi = static_cast<size_t>(item.asUint());
            if (gi >= sweep.size())
                continue;
            int roll = workerCrashRoll(crash_prob, options.faultSeed,
                                       setup.slot, setup.gen, gi);
            if (roll == 1)
                ::raise(SIGKILL); // chaos: die before running the cell

            {
                Json msg = Json::object();
                msg["kind"] = Json("cell_start");
                msg["index"] = Json(static_cast<uint64_t>(gi));
                evt.send(msg);
            }

            // One-cell sub-sweep through the standard machinery:
            // isolation, timeout, retries and backoff all behave as
            // they would in the serial sweep, and seedIndexOffset
            // reproduces the serial sweep's per-attempt seeds for
            // cell gi exactly (the bit-identity invariant).
            std::vector<SweepJob> one = {sweep[gi]};
            SweepOptions cell_options = options.cell;
            cell_options.journal = nullptr;
            cell_options.telemetry = nullptr;
            // Sweep-level host metrics stay coordinator-side: the
            // forked copy of any caller registry dies with the worker.
            cell_options.metrics = nullptr;
            cell_options.selfKillAfter = 0;
            cell_options.seedIndexOffset = gi;
            SweepRunner runner(1);
            SweepOutcome so = runner.runCollect(one, cell_options);

            if (so.ok.size() == 1 && so.ok[0]) {
                uint64_t ts = monotonicMicros();
                // The cell's per-job registry (if any) accumulated in
                // this worker only; snapshot it for both the durable
                // record and the live report so the coordinator's
                // merged registry matches a serial sweep's.
                Json registry;
                if (one[0].metrics)
                    registry = one[0].metrics->json();
                // Durable before reported: a worker killed between the
                // fsync and the send leaves a record the coordinator
                // never saw — it re-leases the cell, the re-run
                // appends a second record, and the merge's
                // earliest-attempt dedupe resolves it. The chaos roll
                // dies in exactly that window.
                shard.noteDone(gi, so.results[0], ts,
                               registry.isObject() ? &registry
                                                   : nullptr,
                               so.checkpointResumes,
                               so.checkpointCyclesSaved);
                if (roll == 2)
                    ::raise(SIGKILL);
                Json msg = Json::object();
                msg["kind"] = Json("cell");
                msg["index"] = Json(static_cast<uint64_t>(gi));
                msg["ts"] = Json(ts);
                msg["metrics"] = BenchReport::toJson(so.results[0]);
                if (registry.isObject())
                    msg["registry"] = std::move(registry);
                if (so.checkpointResumes)
                    msg["ckpt_resumes"] = Json(so.checkpointResumes);
                if (so.checkpointCyclesSaved) {
                    msg["ckpt_cycles_saved"] =
                        Json(so.checkpointCyclesSaved);
                }
                evt.send(msg);
            } else if (!so.failures.empty()) {
                const SweepJobFailure &f = so.failures.front();
                Json msg = Json::object();
                msg["kind"] = Json("cell_fail");
                msg["index"] = Json(static_cast<uint64_t>(gi));
                msg["message"] = Json(f.message);
                msg["attempts"] =
                    Json(static_cast<uint64_t>(f.attempts));
                msg["timed_out"] = Json(f.timedOut);
                msg["crashed"] = Json(f.crashed);
                msg["exit_signal"] =
                    Json(static_cast<int64_t>(f.exitSignal));
                msg["exit_code"] =
                    Json(static_cast<int64_t>(f.exitCode));
                msg["attempts_backoff_ms"] = Json(f.attemptsBackoffMs);
                msg["stalled"] = Json(f.stalled);
                msg["ckpt_resumes"] = Json(f.checkpointResumes);
                msg["resumed_from_cycle"] = Json(f.resumedFromCycle);
                // Failed attempts' resumes still saved re-execution;
                // the sub-sweep total keeps the coordinator's report
                // matching a serial sweep of the same cells.
                msg["ckpt_cycles_saved"] =
                    Json(so.checkpointCyclesSaved);
                evt.send(msg);
            } else {
                // Interrupted before the cell ran (SIGINT reached the
                // whole process group): leave the cell non-terminal
                // and stop; the coordinator is shutting down too.
                ::_exit(0);
            }
            cells_done.fetch_add(1, std::memory_order_relaxed);
        }
        // No end-of-lease message: the coordinator retires a lease
        // cell-by-cell from the per-cell reports. (An explicit
        // lease-done marker would race the next lease: the coordinator
        // assigns it the moment the last cell's report arrives, and a
        // marker still in flight would then refer to the *previous*
        // lease.)
    }
    ::_exit(0);
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/** Coordinator's view of one worker slot. */
struct WorkerState
{
    unsigned slot = 0;
    unsigned gen = 0;
    pid_t pid = -1;
    int cmdFd = -1; ///< parent write end
    int evtFd = -1; ///< parent read end
    bool alive = false;
    bool exitSent = false;
    std::string buf;
    /** Cells of the current lease not yet reported terminal. */
    std::vector<size_t> lease;
    /** True when the current lease was stolen from another worker. */
    bool leaseStolen = false;
    /** Cell named by the last cell_start without a terminal report. */
    size_t running = kNoCell;
    SteadyClock::time_point leaseStart{};
    SteadyClock::time_point lastBeat{};
};

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Scan dir for this bench's fabric shards, sorted by filename. */
std::vector<std::string>
listShards(const std::string &dir, const std::string &bench_name)
{
    std::vector<std::string> paths;
    std::string prefix = bench_name + ".fabric.w";
    std::string suffix = ".journal.jsonl";
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return paths;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() >= prefix.size() + suffix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

/** Worker slot parsed from a shard filename ("...fabric.w<slot>...");
 *  UINT_MAX when malformed (still merged, lowest tie-break priority). */
unsigned
shardSlot(const std::string &path)
{
    std::string name = std::filesystem::path(path).filename().string();
    size_t w = name.rfind(".fabric.w");
    if (w == std::string::npos)
        return std::numeric_limits<unsigned>::max();
    const char *digits = name.c_str() + w + 9;
    char *end = nullptr;
    unsigned long slot = std::strtoul(digits, &end, 10);
    if (end == digits || slot > std::numeric_limits<unsigned>::max())
        return std::numeric_limits<unsigned>::max();
    return static_cast<unsigned>(slot);
}

uint64_t
msgUint(const Json &msg, const char *key)
{
    return msg.has(key) && msg.at(key).isNumber() ? msg.at(key).asUint()
                                                  : 0;
}

} // namespace

std::string
fabricShardPath(const std::string &dir, const std::string &bench_name,
                unsigned slot)
{
    return dir + "/" + bench_name + ".fabric.w" + std::to_string(slot) +
           ".journal.jsonl";
}

std::map<size_t, ReplayedCell>
mergeFabricShards(const std::string &dir, const std::string &bench_name,
                  uint64_t config_hash, size_t job_count)
{
    struct Winner
    {
        ReplayedCell cell;
        unsigned slot = 0;
    };
    std::map<size_t, Winner> winners;
    bool removed_any = false;
    for (const std::string &path : listShards(dir, bench_name)) {
        std::vector<ReplayedCell> cells;
        std::string io_error;
        if (!SweepJournal::replay(path, bench_name, config_hash,
                                  job_count, cells, &io_error)) {
            if (!io_error.empty()) {
                // The shard exists but the OS refused to open it: its
                // completed cells are about to be silently lost and
                // re-run. Fail loudly with the path and errno instead
                // — the operator can fix permissions / the disk and
                // resume exactly.
                SweepJobFailure f;
                f.message =
                    "fabric journal shard unreadable: " + io_error;
                throw SweepFailure({std::move(f)});
            }
            // Superseded shard (other fingerprint, other job count, or
            // an unreadable header): it can never be replayed again —
            // reap it instead of orphaning it in the results dir.
            std::error_code ec;
            std::filesystem::remove(path, ec);
            removed_any = true;
            continue;
        }
        unsigned slot = shardSlot(path);
        for (ReplayedCell &cell : cells) {
            auto it = winners.find(cell.index);
            // Exactly-once rule: the earliest attempt timestamp wins;
            // ties (including legacy ts-less records) break towards
            // the lower worker slot, so the merge is deterministic
            // regardless of scan order.
            if (it == winners.end() || cell.ts < it->second.cell.ts ||
                (cell.ts == it->second.cell.ts &&
                 slot < it->second.slot)) {
                winners[cell.index] = {std::move(cell), slot};
            }
        }
    }
    if (removed_any)
        fsyncParentDir(dir + "/shard");
    std::map<size_t, ReplayedCell> merged;
    for (auto &entry : winners)
        merged[entry.first] = std::move(entry.second.cell);
    return merged;
}

void
noteFabricReport(BenchReport &report, const FabricOutcome &outcome)
{
    report.noteOutcome(outcome.sweep);
    report.set("workers",
               Json(static_cast<uint64_t>(outcome.workers)));
    report.set("stolen_runs", Json(outcome.stolenRuns));
    Json failures = Json::array();
    for (const FabricWorkerFailure &f : outcome.workerFailures) {
        Json entry = Json::object();
        entry["slot"] = Json(static_cast<uint64_t>(f.slot));
        entry["pid"] = Json(static_cast<int64_t>(f.pid));
        entry["exit_signal"] = Json(static_cast<int64_t>(f.exitSignal));
        entry["exit_code"] = Json(static_cast<int64_t>(f.exitCode));
        Json cells = Json::array();
        for (size_t c : f.cellsLost)
            cells.push(Json(static_cast<uint64_t>(c)));
        entry["cells_lost"] = std::move(cells);
        failures.push(std::move(entry));
    }
    report.set("worker_failures", std::move(failures));
}

FabricOptions
fabricOptionsFromEnv(FabricOptions base)
{
    auto envUnsigned = [](const char *name, unsigned &out) {
        if (const char *env = std::getenv(name)) {
            char *end = nullptr;
            unsigned long v = std::strtoul(env, &end, 10);
            if (!std::strchr(env, '-') && !std::strchr(env, '+') &&
                end && end != env && *end == '\0' &&
                v <= std::numeric_limits<unsigned>::max()) {
                out = static_cast<unsigned>(v);
            } else {
                atl_warn("ignoring malformed ", name, "='", env, "'");
            }
        }
    };
    envUnsigned("ATL_FABRIC_WORKERS", base.workers);
    if (const char *env = std::getenv("ATL_FABRIC_CHAOS")) {
        if (*env && std::string(env) != "0")
            base.faults.workerCrashProb =
                FaultPlan::workerChaos().workerCrashProb;
    }
    envUnsigned("ATL_FABRIC_KILL_AFTER", base.killWorkerAfterCells);
    envUnsigned("ATL_FABRIC_COORD_KILL_AFTER",
                base.coordinatorKillAfterCells);
    return base;
}

FabricOutcome
runFabric(const std::vector<SweepJob> &sweep,
          const FabricOptions &options)
{
    for (const SweepJob &job : sweep) {
        atl_assert(job.body || job.seededBody, "fabric job '", job.name,
                   "' has no body");
    }

    FabricOutcome outcome;
    size_t n = sweep.size();
    outcome.sweep.results.resize(n);
    outcome.sweep.ok.assign(n, 0);
    outcome.sweep.resumed.assign(n, 0);
    if (n == 0)
        return outcome;

    std::string dir = options.shardDir.empty()
                          ? BenchReport::resultsDir()
                          : options.shardDir;
    {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    uint64_t config_hash = SweepJournal::configHash(
        options.benchName, sweep, options.configFingerprint);

    auto emit = [&](EventKind kind, uint64_t en, uint64_t em,
                    uint64_t t0) {
        if (!options.telemetry)
            return;
        Event e;
        e.kind = kind;
        e.cpu = InvalidCpuId16;
        e.n = en;
        e.m = em;
        e.t0 = t0;
        options.telemetry->record(e);
    };

    // Resume: merge every shard a previous coordinator left behind.
    std::vector<uint8_t> terminal(n, 0);
    size_t terminal_count = 0;
    for (auto &entry :
         mergeFabricShards(dir, options.benchName, config_hash, n)) {
        size_t i = entry.first;
        outcome.sweep.results[i] = std::move(entry.second.metrics);
        outcome.sweep.ok[i] = 1;
        outcome.sweep.resumed[i] = 1;
        terminal[i] = 1;
        ++terminal_count;
        ++outcome.mergedFromShards;
        // Replayed checkpoint accounting keeps a resumed fabric's
        // schema-8 totals equal to the run that earned them.
        outcome.sweep.checkpointResumes += entry.second.ckptResumes;
        outcome.sweep.checkpointCyclesSaved +=
            entry.second.ckptCyclesSaved;
        // The cell never re-executes, so its registry contribution
        // comes from the shard's done-record snapshot.
        if (options.metrics && entry.second.registry.isObject() &&
            !options.metrics->mergeJson(entry.second.registry)) {
            atl_warn("fabric: malformed metrics registry in shard ",
                     "record for cell ", i,
                     "; its registry contribution is lost");
        }
        emit(EventKind::SweepResume, i, 0, 0);
    }

    std::deque<size_t> pending;
    for (size_t i = 0; i < n; ++i) {
        if (!terminal[i])
            pending.push_back(i);
    }

    auto remove_shards = [&] {
        bool removed = false;
        for (const std::string &path :
             listShards(dir, options.benchName)) {
            std::error_code ec;
            std::filesystem::remove(path, ec);
            removed = true;
        }
        if (removed)
            fsyncParentDir(dir + "/shard");
    };

    if (pending.empty()) {
        // Fully resumable from shards: nothing to fork.
        remove_shards();
        return outcome;
    }

    SweepSignalGuard signal_guard;

    // Writing a lease to a worker that just died must come back as
    // EPIPE, not kill the coordinator; workers inherit the ignore and
    // map their own EPIPE to a clean exit (orphan shutdown).
    struct sigaction ignore_pipe, old_pipe;
    std::memset(&ignore_pipe, 0, sizeof(ignore_pipe));
    ignore_pipe.sa_handler = SIG_IGN;
    sigemptyset(&ignore_pipe.sa_mask);
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    unsigned worker_count = std::max(1u, options.workers);
    worker_count = static_cast<unsigned>(std::min<size_t>(
        worker_count, pending.size()));
    outcome.workers = worker_count;

    // ATL_FABRIC_DEBUG=1: narrate every coordinator transition (lease,
    // steal, report, death, requeue) to stderr — the first tool to
    // reach for when a fabric run wedges or loses a cell.
    const char *debug_env = std::getenv("ATL_FABRIC_DEBUG");
    bool debug = debug_env && *debug_env && std::string(debug_env) != "0";
    auto dbg = [&](const std::string &text) {
        if (debug)
            std::cerr << "[fabric] " << text << "\n";
    };

    std::vector<WorkerState> workers(worker_count);
    std::vector<unsigned> cell_deaths(n, 0);
    size_t executed_done = 0; ///< cells completed this run (not merged)
    unsigned respawns_used = 0;
    bool kill_one_fired = options.killWorkerAfterCells == 0;
    bool coord_kill_armed = options.coordinatorKillAfterCells > 0;
    /** Live workers holding cell i in their lease. */
    std::vector<unsigned> claims(n, 0);

    // Live status line. TTY stderr rewrites one line in place; forced
    // on without a TTY (ATL_FABRIC_STATUS=1 in CI) emits one
    // grep-friendly line per update instead.
    bool status_tty = ::isatty(STDERR_FILENO) != 0;
    bool status_on;
    if (options.liveStatus >= 0) {
        status_on = options.liveStatus > 0;
    } else if (const char *env = std::getenv("ATL_FABRIC_STATUS")) {
        status_on = *env && std::string(env) != "0";
    } else {
        status_on = status_tty;
    }
    /** cell_start receive stamp, for coordinator-observed latency. */
    std::vector<SteadyClock::time_point> cell_started(n);
    MetricHistogram latency_hist;
    SteadyClock::time_point last_status{};
    auto render_status = [&](bool final_line) {
        if (!status_on)
            return;
        auto now = SteadyClock::now();
        if (!final_line &&
            now - last_status < std::chrono::milliseconds(250))
            return;
        last_status = now;
        unsigned live = 0;
        for (const WorkerState &w : workers)
            live += w.alive ? 1 : 0;
        std::string line =
            "atl-fabric: " + std::to_string(terminal_count) + "/" +
            std::to_string(n) + " cells (" +
            std::to_string(outcome.stolenRuns) + " stolen, " +
            std::to_string(outcome.sweep.failures.size()) + " failed, " +
            std::to_string(outcome.mergedFromShards) +
            " merged), workers " + std::to_string(live);
        if (latency_hist.total > 0) {
            char buf[64];
            std::snprintf(
                buf, sizeof(buf), ", p50 %.1fms p95 %.1fms",
                static_cast<double>(
                    latency_hist.quantileUpperBound(0.50)) /
                    1000.0,
                static_cast<double>(
                    latency_hist.quantileUpperBound(0.95)) /
                    1000.0);
            line += buf;
            size_t remaining = n - terminal_count;
            if (remaining > 0 && live > 0) {
                // Median pace extrapolated across the live workers: a
                // coarse but honest tail estimate (bucket upper
                // bounds, coordinator-observed).
                double eta_s =
                    static_cast<double>(remaining) *
                    static_cast<double>(
                        latency_hist.quantileUpperBound(0.50)) /
                    1e6 / static_cast<double>(live);
                std::snprintf(buf, sizeof(buf), ", eta %.1fs", eta_s);
                line += buf;
            }
        }
        if (status_tty) {
            std::cerr << "\r" << line << "\x1b[K"
                      << (final_line ? "\n" : "") << std::flush;
        } else {
            std::cerr << line << "\n";
        }
    };

    auto spawn = [&](unsigned slot, unsigned gen) -> bool {
        WorkerState &w = workers[slot];
        w.slot = slot;
        w.gen = gen;
        w.buf.clear();
        w.lease.clear();
        w.leaseStolen = false;
        w.running = kNoCell;
        w.exitSent = false;

        int cmd[2], evt[2];
        pid_t pid = -1;
        {
            // Same serialisation contract as runSupervised (see
            // forkSerializeMutex): no worker may inherit an in-flight
            // supervised attempt's pipe write end, and no supervised
            // fork may race this pipe window.
            std::lock_guard<std::mutex> lock(forkSerializeMutex());
            if (::pipe(cmd) != 0)
                return false;
            if (::pipe(evt) != 0) {
                ::close(cmd[0]);
                ::close(cmd[1]);
                return false;
            }
            pid = ::fork();
            if (pid < 0) {
                for (int fd : {cmd[0], cmd[1], evt[0], evt[1]})
                    ::close(fd);
                return false;
            }
            if (pid == 0) {
                // Child. The clone of the locked fork mutex belongs to
                // the very thread we are a clone of; release it so the
                // worker's own supervised attempts can take it (glibc
                // semantics, same assumption as fork-from-threads in
                // the supervisor).
                forkSerializeMutex().unlock();
                // Drop every sibling's pipe ends: a worker holding a
                // sibling's evt write end would delay that sibling's
                // EOF death signal until *this* worker also exited.
                for (WorkerState &other : workers) {
                    closeFd(other.cmdFd);
                    closeFd(other.evtFd);
                }
                ::close(cmd[1]);
                ::close(evt[0]);
                WorkerSetup setup;
                setup.slot = slot;
                setup.gen = gen;
                setup.cmdFd = cmd[0];
                setup.evtFd = evt[1];
                setup.configHash = config_hash;
                setup.shardPath =
                    fabricShardPath(dir, options.benchName, slot);
                fabricWorkerMain(setup, sweep, options);
            }
            ::close(cmd[0]);
            ::close(evt[1]);
        }
        // Non-blocking event reads: the poll loop drains whatever is
        // buffered without ever hanging on a half-written line.
        int fl = ::fcntl(evt[0], F_GETFL, 0);
        ::fcntl(evt[0], F_SETFL, fl | O_NONBLOCK);
        w.pid = pid;
        w.cmdFd = cmd[1];
        w.evtFd = evt[0];
        w.alive = true;
        w.lastBeat = SteadyClock::now();
        return true;
    };

    for (unsigned slot = 0; slot < worker_count; ++slot) {
        if (!spawn(slot, 0))
            atl_warn("fabric: could not spawn worker ", slot);
    }

    auto send_lease = [&](WorkerState &w, std::vector<size_t> cells,
                          bool stolen) {
        Json msg = Json::object();
        msg["kind"] = Json("lease");
        Json arr = Json::array();
        for (size_t c : cells) {
            arr.push(Json(static_cast<uint64_t>(c)));
            ++claims[c];
        }
        msg["cells"] = std::move(arr);
        w.lease = std::move(cells);
        w.leaseStolen = stolen;
        w.leaseStart = SteadyClock::now();
        if (debug) {
            std::string text = std::string(stolen ? "steal" : "lease") +
                               " -> slot " + std::to_string(w.slot) +
                               " gen " + std::to_string(w.gen) + ":";
            for (size_t c : w.lease)
                text += " " + std::to_string(c) + "(claims " +
                        std::to_string(claims[c]) + ")";
            dbg(text);
        }
        writeLine(w.cmdFd, msg.dumpCompact());
    };

    auto send_exit = [&](WorkerState &w) {
        if (w.exitSent || !w.alive)
            return;
        Json msg = Json::object();
        msg["kind"] = Json("exit");
        writeLine(w.cmdFd, msg.dumpCompact());
        w.exitSent = true;
    };

    /** Hand work to every idle live worker: pending cells first, then
     *  steal the in-flight cells of the slowest lease. */
    auto assign_work = [&] {
        if (SweepSignalGuard::interrupted())
            return;
        for (WorkerState &w : workers) {
            if (!w.alive || w.exitSent || !w.lease.empty())
                continue;
            if (!pending.empty()) {
                std::vector<size_t> cells;
                size_t take = std::max<size_t>(1, options.leaseCells);
                while (!pending.empty() && cells.size() < take) {
                    cells.push_back(pending.front());
                    pending.pop_front();
                }
                send_lease(w, std::move(cells), false);
                continue;
            }
            // Steal from the slowest lease: the live worker whose
            // current lease started longest ago and still holds
            // singly-claimed, non-terminal cells. The victim keeps
            // running — first terminal report wins; the loser's
            // duplicate is discarded.
            WorkerState *victim = nullptr;
            for (WorkerState &v : workers) {
                if (!v.alive || &v == &w || v.lease.empty())
                    continue;
                bool stealable = false;
                for (size_t c : v.lease) {
                    if (!terminal[c] && claims[c] == 1) {
                        stealable = true;
                        break;
                    }
                }
                if (!stealable)
                    continue;
                if (!victim || v.leaseStart < victim->leaseStart)
                    victim = &v;
            }
            if (!victim)
                continue;
            std::vector<size_t> cells;
            for (size_t c : victim->lease) {
                if (!terminal[c] && claims[c] == 1)
                    cells.push_back(c);
            }
            for (size_t c : cells)
                emit(EventKind::CellStolen, c, w.slot, victim->slot);
            outcome.stolenRuns += cells.size();
            send_lease(w, std::move(cells), true);
        }
    };

    auto drop_claim = [&](size_t cell) {
        if (claims[cell] > 0)
            --claims[cell];
    };

    /** A cell reached its terminal state (done or failed) this run. */
    auto note_executed = [&] {
        ++executed_done;
        if (!kill_one_fired &&
            executed_done >= options.killWorkerAfterCells) {
            kill_one_fired = true;
            for (WorkerState &w : workers) {
                if (w.alive) {
                    ::kill(w.pid, SIGKILL);
                    break;
                }
            }
        }
        if (coord_kill_armed &&
            executed_done >= options.coordinatorKillAfterCells) {
            // Chaos: the coordinator itself dies hard. The fsync'd
            // shards (and orphan workers' SIGPIPE shutdown) are the
            // recovery story, exercised by the resume leg.
            ::raise(SIGKILL);
        }
    };

    auto handle_message = [&](WorkerState &w, const Json &msg) {
        if (!msg.isObject() || !msg.at("kind").isString())
            return;
        const std::string &kind = msg.at("kind").asString();
        w.lastBeat = SteadyClock::now();
        if (kind == "hb" || kind == "hello")
            return;
        if (kind == "cell_start") {
            w.running = static_cast<size_t>(msgUint(msg, "index"));
            if (w.running < n)
                cell_started[w.running] = SteadyClock::now();
            return;
        }
        if (kind == "lease_done") {
            // Legacy end-of-lease marker (older workers). It MUST be a
            // no-op: the pipe is FIFO, so every report of the batch it
            // closes has already been processed and the lease it refers
            // to is already empty. Anything still in w.lease here
            // belongs to a lease issued *after* that batch — clearing
            // it would orphan those cells (claims drop to zero while no
            // lease and no pending entry holds them) and livelock the
            // coordinator.
            return;
        }
        if (kind != "cell" && kind != "cell_fail")
            return;

        size_t gi = static_cast<size_t>(msgUint(msg, "index"));
        if (gi >= n)
            return;
        dbg("report <- slot " + std::to_string(w.slot) + " gen " +
            std::to_string(w.gen) + ": " + kind + " " +
            std::to_string(gi) +
            (terminal[gi] ? " (duplicate, discarded)" : ""));
        auto in_lease = std::find(w.lease.begin(), w.lease.end(), gi);
        if (in_lease != w.lease.end()) {
            w.lease.erase(in_lease);
            drop_claim(gi);
        }
        if (w.running == gi)
            w.running = kNoCell;
        if (terminal[gi])
            return; // duplicate of a stolen cell: first report won
        if (cell_started[gi] != SteadyClock::time_point{}) {
            std::chrono::duration<double, std::micro> lat =
                SteadyClock::now() - cell_started[gi];
            latency_hist.observe(
                static_cast<uint64_t>(std::max(0.0, lat.count())));
        }
        if (kind == "cell") {
            RunMetrics metrics;
            if (!msg.has("metrics") ||
                !BenchReport::fromJson(msg.at("metrics"), metrics)) {
                atl_warn("fabric: worker ", w.slot,
                         " sent unparsable metrics for cell ", gi);
                return;
            }
            // First terminal report wins, so each cell's registry
            // snapshot is folded in exactly once.
            if (options.metrics && msg.has("registry") &&
                !options.metrics->mergeJson(msg.at("registry"))) {
                atl_warn("fabric: worker ", w.slot,
                         " sent a malformed metrics registry for ",
                         "cell ", gi,
                         "; its registry contribution is lost");
            }
            terminal[gi] = 1;
            ++terminal_count;
            outcome.sweep.results[gi] = std::move(metrics);
            outcome.sweep.ok[gi] = 1;
            outcome.sweep.checkpointResumes += msgUint(msg, "ckpt_resumes");
            outcome.sweep.checkpointCyclesSaved +=
                msgUint(msg, "ckpt_cycles_saved");
            note_executed();
            return;
        }
        SweepJobFailure f;
        f.index = gi;
        f.name = sweep[gi].name;
        f.message = msg.has("message") && msg.at("message").isString()
                        ? msg.at("message").asString()
                        : "fabric cell failed";
        f.attempts = static_cast<unsigned>(msgUint(msg, "attempts"));
        f.timedOut = msg.has("timed_out") && msg.at("timed_out").asBool();
        f.crashed = msg.has("crashed") && msg.at("crashed").asBool();
        f.exitSignal = static_cast<int>(msgUint(msg, "exit_signal"));
        f.exitCode = static_cast<int>(msgUint(msg, "exit_code"));
        f.attemptsBackoffMs = msgUint(msg, "attempts_backoff_ms");
        f.stalled = msg.has("stalled") && msg.at("stalled").asBool();
        f.checkpointResumes = msgUint(msg, "ckpt_resumes");
        f.resumedFromCycle = msgUint(msg, "resumed_from_cycle");
        // A failed cell's resumes still saved re-execution; fold them
        // into the sweep totals like the serial engine does.
        outcome.sweep.checkpointResumes += f.checkpointResumes;
        outcome.sweep.checkpointCyclesSaved +=
            msgUint(msg, "ckpt_cycles_saved");
        terminal[gi] = 1;
        ++terminal_count;
        outcome.sweep.failures.push_back(std::move(f));
        note_executed();
    };

    /** Reap a dead worker: account the failure, requeue its cells,
     *  respawn the slot while work remains. */
    auto handle_death = [&](WorkerState &w, int status) {
        w.alive = false;
        closeFd(w.cmdFd);
        closeFd(w.evtFd);

        bool signalled = WIFSIGNALED(status);
        int code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        bool abnormal = signalled || code != 0;

        if (debug) {
            std::string text =
                "death: slot " + std::to_string(w.slot) + " gen " +
                std::to_string(w.gen) + " pid " + std::to_string(w.pid) +
                (signalled ? " sig " + std::to_string(WTERMSIG(status))
                           : " code " + std::to_string(code)) +
                " running " +
                (w.running == kNoCell ? std::string("-")
                                      : std::to_string(w.running)) +
                " lease:";
            for (size_t c : w.lease)
                text += " " + std::to_string(c) + "(claims " +
                        std::to_string(claims[c]) + ", terminal " +
                        std::to_string(terminal[c]) + ")";
            dbg(text);
        }

        std::vector<size_t> lost;
        for (size_t c : w.lease) {
            drop_claim(c);
            if (!terminal[c])
                lost.push_back(c);
        }
        w.lease.clear();

        if (abnormal) {
            FabricWorkerFailure f;
            f.slot = w.slot;
            f.pid = static_cast<int>(w.pid);
            f.exitSignal = signalled ? WTERMSIG(status) : 0;
            f.exitCode = code;
            f.cellsLost = lost;
            emit(EventKind::WorkerDeath, w.slot,
                 static_cast<uint64_t>(w.pid),
                 static_cast<uint64_t>(signalled ? WTERMSIG(status)
                                                 : code));
            outcome.workerFailures.push_back(std::move(f));

            // Poison-cell watch: a cell that keeps killing the worker
            // running it must not be re-leased forever.
            if (w.running != kNoCell && w.running < n &&
                !terminal[w.running]) {
                size_t c = w.running;
                if (++cell_deaths[c] >= options.cellDeathLimit) {
                    SweepJobFailure f2;
                    f2.index = c;
                    f2.name = sweep[c].name;
                    f2.message =
                        "fabric: worker died " +
                        std::to_string(cell_deaths[c]) +
                        " times while running this cell (poison cell)";
                    f2.crashed = true;
                    f2.exitSignal =
                        signalled ? WTERMSIG(status) : 0;
                    f2.exitCode = code;
                    f2.attempts = cell_deaths[c];
                    terminal[c] = 1;
                    ++terminal_count;
                    outcome.sweep.failures.push_back(std::move(f2));
                    note_executed();
                    lost.erase(std::remove(lost.begin(), lost.end(), c),
                               lost.end());
                }
            }
        }
        w.running = kNoCell;

        // Requeue at the front — these cells have been waiting longest
        // — unless a thief still holds a claim (it will report them).
        for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
            if (claims[*it] == 0 && !terminal[*it])
                pending.push_front(*it);
        }

        if (SweepSignalGuard::interrupted())
            return;
        bool work_left = terminal_count < n;
        if (work_left && respawns_used < options.maxRespawns) {
            ++respawns_used;
            if (spawn(w.slot, w.gen + 1))
                return;
            atl_warn("fabric: could not respawn worker ", w.slot);
        }
        // No respawn: if this was the last live worker, every pending
        // cell is unreachable — fail them so the run terminates with
        // attributable losses instead of spinning.
        bool any_alive = false;
        for (const WorkerState &other : workers)
            any_alive = any_alive || other.alive;
        if (!any_alive) {
            while (!pending.empty()) {
                size_t c = pending.front();
                pending.pop_front();
                if (terminal[c])
                    continue;
                SweepJobFailure f;
                f.index = c;
                f.name = sweep[c].name;
                f.message = "fabric: no workers left (respawn budget "
                            "exhausted)";
                f.crashed = true;
                terminal[c] = 1;
                ++terminal_count;
                outcome.sweep.failures.push_back(std::move(f));
            }
        }
    };

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------
    while (terminal_count < n) {
        if (SweepSignalGuard::interrupted())
            break;
        assign_work();

        std::vector<struct pollfd> fds;
        std::vector<unsigned> fd_slots;
        for (WorkerState &w : workers) {
            if (w.alive && w.evtFd >= 0) {
                fds.push_back({w.evtFd, POLLIN, 0});
                fd_slots.push_back(w.slot);
            }
        }
        if (fds.empty()) {
            // Nobody alive and nothing terminal-izable: handle_death
            // has already failed the pending cells, so only in-flight
            // bookkeeping bugs could land here — bail out rather than
            // spin.
            if (terminal_count < n)
                break;
            continue;
        }
        int pr = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                        kFabricTickMs);
        if (pr < 0 && errno != EINTR)
            break;

        std::vector<unsigned> eof_slots;
        if (pr > 0) {
            for (size_t k = 0; k < fds.size(); ++k) {
                if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                WorkerState &w = workers[fd_slots[k]];
                char buf[4096];
                for (;;) {
                    ssize_t r = ::read(w.evtFd, buf, sizeof(buf));
                    if (r > 0) {
                        w.buf.append(buf, static_cast<size_t>(r));
                        continue;
                    }
                    if (r == 0) {
                        eof_slots.push_back(w.slot);
                        break;
                    }
                    if (errno == EINTR)
                        continue;
                    break; // EAGAIN: drained
                }
                size_t start = 0;
                for (;;) {
                    size_t nl = w.buf.find('\n', start);
                    if (nl == std::string::npos)
                        break;
                    std::string line = w.buf.substr(start, nl - start);
                    start = nl + 1;
                    Json msg;
                    if (!line.empty() && Json::parse(line, msg))
                        handle_message(w, msg);
                }
                w.buf.erase(0, start);
            }
        }

        // Death watch: reap EOF'd workers and any death the pipe
        // missed (a grandchild holding the write end open).
        for (WorkerState &w : workers) {
            if (!w.alive)
                continue;
            int status = 0;
            pid_t r = ::waitpid(w.pid, &status, WNOHANG);
            if (r == w.pid) {
                handle_death(w, status);
            } else if (std::find(eof_slots.begin(), eof_slots.end(),
                                 w.slot) != eof_slots.end()) {
                // EOF but not yet reaped: block briefly for the status
                // (the process is in exit; this cannot hang).
                for (;;) {
                    r = ::waitpid(w.pid, &status, 0);
                    if (r == w.pid || errno != EINTR)
                        break;
                }
                handle_death(w, r == w.pid ? status : 0);
            }
        }

        // Wedge watch: a silent worker (no heartbeat, not dead) is
        // reclaimed with SIGKILL; the next tick reaps it like any
        // other death and its cells are re-leased.
        if (options.livenessTimeoutSeconds > 0.0) {
            auto now = SteadyClock::now();
            for (WorkerState &w : workers) {
                if (!w.alive)
                    continue;
                std::chrono::duration<double> quiet = now - w.lastBeat;
                if (quiet.count() > options.livenessTimeoutSeconds)
                    ::kill(w.pid, SIGKILL);
            }
        }

        render_status(false);
    }

    render_status(true);

    outcome.sweep.interrupted = SweepSignalGuard::interrupted();

    // Shutdown: ask politely, then reclaim stragglers. Idle workers
    // block in their command read and exit immediately; a worker still
    // mid-cell (interrupt path) gets the grace window, then SIGKILL —
    // its journalled cells survive either way.
    for (WorkerState &w : workers)
        send_exit(w);
    SteadyClock::time_point grace_deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(kExitGraceSeconds));
    for (;;) {
        bool any_alive = false;
        for (WorkerState &w : workers) {
            if (!w.alive)
                continue;
            int status = 0;
            pid_t r = ::waitpid(w.pid, &status, WNOHANG);
            if (r == w.pid)
                handle_death(w, status);
            else
                any_alive = true;
        }
        if (!any_alive)
            break;
        if (SteadyClock::now() >= grace_deadline) {
            for (WorkerState &w : workers) {
                if (w.alive)
                    ::kill(w.pid, SIGKILL);
            }
            for (WorkerState &w : workers) {
                if (!w.alive)
                    continue;
                int status = 0;
                for (;;) {
                    pid_t r = ::waitpid(w.pid, &status, 0);
                    if (r == w.pid || errno != EINTR)
                        break;
                }
                handle_death(w, status);
            }
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (WorkerState &w : workers) {
        closeFd(w.cmdFd);
        closeFd(w.evtFd);
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    std::sort(outcome.sweep.failures.begin(),
              outcome.sweep.failures.end(),
              [](const SweepJobFailure &a, const SweepJobFailure &b) {
                  return a.index < b.index;
              });

    if (outcome.sweep.complete()) {
        // Every cell accounted exactly once: the shards have served
        // their purpose; remove them so the next run starts fresh.
        remove_shards();
    }
    return outcome;
}

} // namespace atl
