#include "atl/sim/experiment.hh"

#include <chrono>
#include <cmath>

#include "atl/fault/fault.hh"
#include "atl/obs/event_log.hh"
#include "atl/obs/metrics.hh"
#include "atl/util/logging.hh"

namespace atl
{

double
RunMetrics::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(eMisses) /
           static_cast<double>(instructions);
}

bool
RunMetrics::operator==(const RunMetrics &other) const
{
    return workload == other.workload && policy == other.policy &&
           numCpus == other.numCpus && makespan == other.makespan &&
           eMisses == other.eMisses && eRefs == other.eRefs &&
           instructions == other.instructions &&
           contextSwitches == other.contextSwitches &&
           schedOverheadCycles == other.schedOverheadCycles &&
           verified == other.verified && degradation == other.degradation;
}

double
RunMetrics::refsPerSec() const
{
    if (hostSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(refsIssued) / hostSeconds;
}

double
RunMetrics::batchOccupancy() const
{
    if (refBlocks == 0)
        return 0.0;
    return static_cast<double>(refsIssued) /
           static_cast<double>(refBlocks);
}

double
RunMetrics::missesEliminated(const RunMetrics &base, const RunMetrics &opt)
{
    if (base.eMisses == 0)
        return 0.0;
    return 1.0 - static_cast<double>(opt.eMisses) /
                     static_cast<double>(base.eMisses);
}

double
RunMetrics::speedup(const RunMetrics &base, const RunMetrics &opt)
{
    if (opt.makespan == 0)
        return 0.0;
    return static_cast<double>(base.makespan) /
           static_cast<double>(opt.makespan);
}

RunMetrics
runWorkload(Workload &workload, const MachineConfig &config, bool trace,
            bool batch_refs)
{
    // Fault events already on the injector belong to earlier runs (one
    // injector may serve a whole sweep); report only this run's delta.
    uint64_t faults_before =
        config.faults ? config.faults->stats().total() : 0;

    Machine machine(config);
    std::unique_ptr<Tracer> tracer;
    if (trace)
        tracer = std::make_unique<Tracer>(machine);

    WorkloadEnv env{machine, tracer.get(), batch_refs};
    workload.setup(env);
    auto t0 = std::chrono::steady_clock::now();
    machine.run();
    auto t1 = std::chrono::steady_clock::now();

    RunMetrics metrics;
    metrics.refsIssued = machine.refsIssued();
    metrics.refBlocks = machine.refBlocks();
    metrics.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    metrics.workload = workload.name();
    metrics.policy = config.policy;
    metrics.numCpus = config.numCpus;
    metrics.makespan = machine.makespan();
    metrics.eMisses = machine.totalEMisses();
    metrics.eRefs = machine.totalERefs();
    metrics.instructions = machine.totalInstructions();
    metrics.contextSwitches = machine.totalSwitches();
    for (CpuId c = 0; c < machine.numCpus(); ++c)
        metrics.schedOverheadCycles += machine.cpuStats(c).schedOverheadCycles;
    metrics.degradation = machine.scheduler().degradation();
    if (config.faults) {
        metrics.degradation.faultEvents =
            config.faults->stats().total() - faults_before;
    }
    metrics.verified = workload.verify();
    if (!metrics.verified) {
        atl_warn("workload '", workload.name(), "' failed verification ",
                 "under policy ", policyName(config.policy));
    }
    return metrics;
}

FootprintMonitor::FootprintMonitor(Machine &machine, Tracer &tracer,
                                   CpuId cpu, uint64_t sample_every)
    : _machine(machine), _tracer(tracer),
      _telemetry(machine.config().telemetry),
      _metrics(machine.config().metrics), _cpu(cpu),
      _sampleEvery(sample_every)
{
    atl_assert(sample_every > 0, "sample interval must be positive");
    if (_metrics)
        _mareGauge = _metrics->gauge("model.residual_mare");
    _tracer.setMissCallback([this](CpuId c, ThreadId t) { onMiss(c, t); });
}

FootprintMonitor::~FootprintMonitor()
{
    _tracer.setMissCallback({});
}

void
FootprintMonitor::setDriver(ThreadId tid)
{
    _driver.store(tid, std::memory_order_relaxed);
    _driverMisses = 0;
    _instrBaseline = _machine.thread(tid).stats.instructions;
    auto it = _targets.find(tid);
    _driverTarget = it != _targets.end() ? &it->second : nullptr;
}

void
FootprintMonitor::track(ThreadId tid, Kind kind, double q)
{
    Target target;
    target.kind = kind;
    target.q = q;
    target.s0 = static_cast<double>(_tracer.footprint(tid, _cpu));
    Target &slot = _targets[tid];
    slot = std::move(target);
    if (tid == _driver.load(std::memory_order_relaxed))
        _driverTarget = &slot;
}

void
FootprintMonitor::onMiss(CpuId cpu, ThreadId tid)
{
    if (cpu != _cpu || tid != _driver.load(std::memory_order_relaxed))
        return;
    ++_driverMisses;
    if (_driverMisses % _sampleEvery == 0)
        sampleAll();
}

void
FootprintMonitor::sampleAll()
{
    ThreadId driver = _driver.load(std::memory_order_relaxed);
    uint64_t instr =
        _machine.thread(driver).stats.instructions - _instrBaseline;

    // The driver's own entry goes through the cached pointer, so the
    // common "monitor the executing thread alone" setup never touches
    // the hash table between setDriver() and the end of the run.
    if (_driverTarget)
        sample(driver, *_driverTarget, instr);
    if (_targets.size() <= (_driverTarget ? 1u : 0u))
        return;
    for (auto &[tid, target] : _targets) {
        if (&target != _driverTarget)
            sample(tid, target, instr);
    }
}

void
FootprintMonitor::sample(ThreadId tid, Target &target, uint64_t instr)
{
    const FootprintModel &model = _machine.model();
    FootprintSample sample;
    sample.misses = _driverMisses;
    sample.instructions = instr;
    sample.observed = static_cast<double>(_tracer.footprint(tid, _cpu));
    switch (target.kind) {
      case Kind::Executing:
        sample.predicted = model.blocking(target.s0, _driverMisses);
        break;
      case Kind::Independent:
        sample.predicted = model.independent(target.s0, _driverMisses);
        break;
      case Kind::Dependent:
        sample.predicted =
            model.dependent(target.q, target.s0, _driverMisses);
        break;
    }
    target.samples.push_back(sample);

    if (_telemetry && _telemetry->config().residuals) {
        Event event;
        event.kind = EventKind::Residual;
        event.cpu = static_cast<uint16_t>(_cpu);
        event.tid = tid;
        event.time = _machine.now();
        event.n = sample.misses;
        event.m = sample.instructions;
        event.value = sample.observed;
        event.aux = sample.predicted;
        _telemetry->record(event);
    }

    // Live residual MARE: the same floor-filtered running mean a
    // meanAbsRelError(tid) call would compute at its default floor,
    // published after every accepted sample. Only the host worker
    // driving _cpu reaches here (onMiss filters), so shard _cpu keeps
    // its single writer.
    if (_metrics && sample.observed >= 32.0) {
        _residualSum +=
            std::fabs(sample.predicted - sample.observed) /
            sample.observed;
        ++_residualUsed;
        _metrics->set(_mareGauge,
                      _residualSum /
                          static_cast<double>(_residualUsed),
                      _cpu);
    }
}

const std::vector<FootprintSample> &
FootprintMonitor::samples(ThreadId tid) const
{
    auto it = _targets.find(tid);
    atl_assert(it != _targets.end(), "thread ", tid, " is not tracked");
    return it->second.samples;
}

double
FootprintMonitor::meanAbsRelError(ThreadId tid, double floor,
                                  size_t *excluded) const
{
    const auto &all = samples(tid);
    double total = 0.0;
    size_t used = 0;
    for (const FootprintSample &s : all) {
        if (s.observed < floor)
            continue;
        total += std::fabs(s.predicted - s.observed) / s.observed;
        ++used;
    }
    if (excluded)
        *excluded = all.size() - used;
    return used ? total / static_cast<double>(used) : 0.0;
}

} // namespace atl
