#include "atl/sim/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "atl/util/logging.hh"

namespace atl
{

namespace
{

/** FNV-1a 64-bit over a byte string. */
uint64_t
fnv1a(uint64_t hash, const void *data, size_t size)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001B3ull;
    }
    return hash;
}

uint64_t
fnv1aString(uint64_t hash, const std::string &s)
{
    hash = fnv1a(hash, s.data(), s.size());
    // Separator byte so {"ab","c"} and {"a","bc"} hash differently.
    unsigned char sep = 0xFF;
    return fnv1a(hash, &sep, 1);
}

/** Hex text of the config hash. JSON numbers are doubles, which cannot
 *  carry a full 64-bit hash exactly, so the header stores it as a
 *  string and the match is a string compare. */
std::string
hashText(uint64_t hash)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace

void
fsyncParentDir(const std::string &file_path)
{
    std::filesystem::path dir =
        std::filesystem::path(file_path).parent_path();
    std::string name = dir.empty() ? "." : dir.string();
    int fd = ::open(name.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

SweepJournal::SweepJournal(std::string bench_name, std::string path)
    : _bench(std::move(bench_name)), _path(std::move(path)),
      _gcSiblings(_path.empty())
{
    if (_path.empty())
        _path = BenchReport::resultsDir() + "/" + _bench + ".journal.jsonl";
}

SweepJournal::~SweepJournal()
{
    if (_fd >= 0)
        ::close(_fd);
}

uint64_t
SweepJournal::configHash(const std::string &bench_name,
                         const std::vector<SweepJob> &sweep,
                         const std::string &config_fingerprint)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1aString(hash, bench_name);
    hash = fnv1aString(hash, config_fingerprint);
    uint64_t count = sweep.size();
    hash = fnv1a(hash, &count, sizeof(count));
    for (const SweepJob &job : sweep)
        hash = fnv1aString(hash, job.name);
    return hash;
}

bool
SweepJournal::replay(const std::string &path,
                     const std::string &bench_name, uint64_t config_hash,
                     size_t job_count, std::vector<ReplayedCell> &out,
                     std::string *io_error)
{
    out.clear();
    if (io_error)
        io_error->clear();

    // Probe with open(2) first: ifstream's failure state hides *why*
    // the open failed, and callers that just listed the file in a
    // directory scan (the fabric's shard merge) must distinguish an
    // unreadable shard — completed cells are about to be lost — from
    // the ordinary no-journal case. ENOENT stays quiet: it is the
    // normal first-run state.
    int probe = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (probe < 0) {
        if (io_error && errno != ENOENT)
            *io_error = path + ": " + std::strerror(errno);
        return false;
    }
    ::close(probe);

    // Accept the file only when its header matches the sweep's shape.
    // A malformed line (torn tail of a crashed writer) ends the
    // replay; everything before it counts.
    std::ifstream in(path);
    if (!in)
        return false;
    bool header_ok = false;
    std::string line;
    bool first = true;
    while (in && std::getline(in, line)) {
        if (line.empty())
            continue;
        Json record;
        if (!Json::parse(line, record) || !record.isObject() ||
            !record.at("kind").isString())
            break;
        const std::string &kind = record.at("kind").asString();
        if (first) {
            first = false;
            if (kind != "begin" || !record.at("bench").isString() ||
                record.at("bench").asString() != bench_name ||
                !record.at("config_hash").isString() ||
                record.at("config_hash").asString() !=
                    hashText(config_hash) ||
                !record.at("jobs").isNumber() ||
                record.at("jobs").asUint() != job_count) {
                break; // stale journal from another sweep shape
            }
            header_ok = true;
            continue;
        }
        if (kind == "done" && record.has("index") &&
            record.has("metrics")) {
            ReplayedCell cell;
            if (BenchReport::fromJson(record.at("metrics"),
                                      cell.metrics)) {
                cell.index =
                    static_cast<size_t>(record.at("index").asUint());
                if (record.has("ts") && record.at("ts").isNumber())
                    cell.ts = record.at("ts").asUint();
                if (record.has("registry") &&
                    record.at("registry").isObject())
                    cell.registry = record.at("registry");
                if (record.has("ckpt_resumes") &&
                    record.at("ckpt_resumes").isNumber())
                    cell.ckptResumes =
                        record.at("ckpt_resumes").asUint();
                if (record.has("ckpt_cycles_saved") &&
                    record.at("ckpt_cycles_saved").isNumber())
                    cell.ckptCyclesSaved =
                        record.at("ckpt_cycles_saved").asUint();
                if (cell.index < job_count)
                    out.push_back(std::move(cell));
            }
        }
        // "start" and "failed" records carry no replayable state:
        // those cells simply run again.
    }
    if (!header_ok)
        out.clear();
    return header_ok;
}

size_t
SweepJournal::gcStale(const std::string &dir,
                      const std::string &bench_name, uint64_t keep_hash)
{
    size_t removed = 0;
    std::string prefix = bench_name + ".";
    std::string suffix = "journal.jsonl";
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return 0;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() < prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        // Keep any journal this (bench, hash) pair could still resume
        // from; everything else for this bench key is superseded. The
        // header check is intentionally loose about job count — a
        // mismatched count also mismatches the hash in practice, and
        // an unreadable/torn header means the file is unreplayable
        // garbage either way.
        bool keep = false;
        std::ifstream in(entry.path());
        std::string line;
        if (in && std::getline(in, line)) {
            Json record;
            if (Json::parse(line, record) && record.isObject() &&
                record.at("kind").isString() &&
                record.at("kind").asString() == "begin" &&
                record.at("bench").isString() &&
                record.at("bench").asString() == bench_name &&
                record.at("config_hash").isString() &&
                record.at("config_hash").asString() ==
                    hashText(keep_hash)) {
                keep = true;
            }
        }
        if (!keep) {
            std::filesystem::remove(entry.path(), ec);
            if (!ec)
                ++removed;
        }
    }
    if (removed)
        fsyncParentDir(dir + "/.");
    return removed;
}

size_t
SweepJournal::beginSweep(uint64_t config_hash, size_t job_count)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _completed.clear();
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }

    std::vector<ReplayedCell> cells;
    bool header_ok =
        replay(_path, _bench, config_hash, job_count, cells);
    // Later records for the same index win, matching historic replay
    // order (within one file they carry identical metrics anyway).
    for (ReplayedCell &cell : cells) {
        size_t index = cell.index;
        _completed[index] = std::move(cell);
    }

    std::error_code ec;
    std::filesystem::path dir =
        std::filesystem::path(_path).parent_path();
    if (!dir.empty())
        std::filesystem::create_directories(dir, ec);

    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (!header_ok)
        flags |= O_TRUNC;
    _fd = ::open(_path.c_str(), flags, 0644);
    if (_fd < 0) {
        atl_fatal("cannot open sweep journal '", _path,
                  "': ", std::strerror(errno));
    }
    if (!header_ok) {
        Json header = Json::object();
        header["kind"] = Json("begin");
        header["bench"] = Json(_bench);
        header["config_hash"] = Json(hashText(config_hash));
        header["jobs"] = Json(static_cast<uint64_t>(job_count));
        std::string line = header.dumpCompact();
        line += '\n';
        ssize_t n = ::write(_fd, line.data(), line.size());
        (void) n;
        ::fsync(_fd);
        // The header's bytes are durable; make the directory entry for
        // a freshly-created journal durable too, or a power cut could
        // forget the file existed at all.
        fsyncParentDir(_path);
    }

    // Reap superseded sibling journals (old fingerprints, old fabric
    // shards) for this bench key; see _gcSiblings for why explicit-path
    // shards leave this to their coordinator.
    if (_gcSiblings)
        gcStale(dir.empty() ? "." : dir.string(), _bench, config_hash);
    return _completed.size();
}

bool
SweepJournal::completedMetrics(size_t index, RunMetrics &out,
                               Json *registry, uint64_t *ckpt_resumes,
                               uint64_t *ckpt_cycles_saved) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _completed.find(index);
    if (it == _completed.end())
        return false;
    out = it->second.metrics;
    if (registry)
        *registry = it->second.registry;
    if (ckpt_resumes)
        *ckpt_resumes = it->second.ckptResumes;
    if (ckpt_cycles_saved)
        *ckpt_cycles_saved = it->second.ckptCyclesSaved;
    return true;
}

size_t
SweepJournal::completedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _completed.size();
}

void
SweepJournal::appendRecord(const Json &record)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    std::string line = record.dumpCompact();
    line += '\n';
    // One write per record keeps lines atomic for same-process readers;
    // the fsync makes the record durable before the sweep moves on, so
    // a SIGKILL right after a job completes can never lose that cell.
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(_fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            atl_warn("sweep journal write to '", _path,
                     "' failed: ", std::strerror(errno));
            return;
        }
        off += static_cast<size_t>(n);
    }
    ::fsync(_fd);
}

void
SweepJournal::noteStart(size_t index, const std::string &name)
{
    Json record = Json::object();
    record["kind"] = Json("start");
    record["index"] = Json(static_cast<uint64_t>(index));
    record["name"] = Json(name);
    appendRecord(record);
}

void
SweepJournal::noteDone(size_t index, const RunMetrics &metrics,
                       uint64_t attempt_ts, const Json *registry,
                       uint64_t ckpt_resumes, uint64_t ckpt_cycles_saved)
{
    Json record = Json::object();
    record["kind"] = Json("done");
    record["index"] = Json(static_cast<uint64_t>(index));
    if (attempt_ts)
        record["ts"] = Json(attempt_ts);
    record["metrics"] = BenchReport::toJson(metrics);
    if (registry && registry->isObject())
        record["registry"] = *registry;
    // Omitted when zero: uncheckpointed journals stay byte-identical
    // to what PR 9 wrote, and old readers ignore unknown keys anyway.
    if (ckpt_resumes)
        record["ckpt_resumes"] = Json(ckpt_resumes);
    if (ckpt_cycles_saved)
        record["ckpt_cycles_saved"] = Json(ckpt_cycles_saved);
    appendRecord(record);
}

void
SweepJournal::noteFailed(const SweepJobFailure &failure)
{
    Json record = Json::object();
    record["kind"] = Json("failed");
    record["index"] = Json(static_cast<uint64_t>(failure.index));
    record["name"] = Json(failure.name);
    record["message"] = Json(failure.message);
    record["attempts"] = Json(static_cast<uint64_t>(failure.attempts));
    record["timed_out"] = Json(failure.timedOut);
    record["crashed"] = Json(failure.crashed);
    record["exit_signal"] =
        Json(static_cast<int64_t>(failure.exitSignal));
    record["exit_code"] = Json(static_cast<int64_t>(failure.exitCode));
    record["attempts_backoff_ms"] = Json(failure.attemptsBackoffMs);
    appendRecord(record);
}

void
SweepJournal::remove()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    std::error_code ec;
    std::filesystem::remove(_path, ec);
    _completed.clear();
}

} // namespace atl
