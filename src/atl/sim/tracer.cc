#include "atl/sim/tracer.hh"

#include <algorithm>

#include "atl/obs/metrics.hh"
#include "atl/util/logging.hh"

namespace atl
{

Tracer::Tracer(Machine &machine)
    : _machine(machine),
      _lineBytes(machine.config().hierarchy.l2.lineBytes),
      _lineShift(log2Exact(machine.config().hierarchy.l2.lineBytes)),
      _numCpus(machine.numCpus()), _footprints(machine.numCpus())
{
    _machine.setObserver(this);
}

Tracer::~Tracer()
{
    _machine.setObserver(nullptr);
}

void
Tracer::registerState(ThreadId tid, VAddr va, uint64_t bytes)
{
    // Registration mutates the shared owner/region tables and probes
    // every processor's cache; under the epoch engine it must run in
    // the single-threaded commit phase.
    Machine::GlobalSection section(_machine);
    atl_assert(bytes > 0, "empty state region");
    uint64_t first = va >> _lineShift;
    uint64_t last = (va + bytes - 1) >> _lineShift;
    _regions[tid].emplace_back(first, last);
    std::vector<ThreadId> co_owners;
    for (uint64_t vline = first; vline <= last; ++vline) {
        HotOwners &owners = ownersGrow(vline);
        if (_autoInfer) {
            // Collect with duplicates; dedup once after the scan
            // instead of a quadratic membership probe per line.
            ownersForEach(owners, vline, [&](ThreadId other) {
                if (other != tid)
                    co_owners.push_back(other);
            });
        }
        if (ownersContain(owners, vline, tid))
            continue;
        ownersAdd(owners, vline, tid);
        // Lines already resident when their ownership is declared must
        // be credited now: later evictions will debit them.
        PAddr pa;
        if (!_machine.vm().translateIfMapped(vline << _lineShift, pa))
            continue;
        for (CpuId cpu = 0; cpu < _numCpus; ++cpu) {
            if (_machine.hierarchy(cpu).l2Contains(pa))
                ++counter(tid, cpu);
        }
    }
    if (_autoInfer) {
        std::sort(co_owners.begin(), co_owners.end());
        co_owners.erase(std::unique(co_owners.begin(), co_owners.end()),
                        co_owners.end());
    }

    // Runtime inference (paper Section 7 direction): refresh the
    // sharing arcs between the registering thread and every thread it
    // now overlaps.
    if (_autoInfer) {
        for (ThreadId other : co_owners) {
            double q_to = overlap(tid, other);
            double q_from = overlap(other, tid);
            if (q_to >= _autoInferMinQ)
                _machine.graph().share(tid, other, q_to);
            if (q_from >= _autoInferMinQ)
                _machine.graph().share(other, tid, q_from);
        }
    }
}

void
Tracer::enableAutoInference(double min_q)
{
    _autoInfer = true;
    _autoInferMinQ = min_q;
}

bool
Tracer::vlineOf(PAddr pa, uint64_t &vline) const
{
    VAddr va;
    if (!_machine.vm().reverse(pa, va))
        return false;
    vline = va >> _lineShift;
    return true;
}

bool
Tracer::ownersContain(const HotOwners &hot, uint64_t vline,
                      ThreadId tid) const
{
    unsigned n = hot.count < HotOwners::kInline ? hot.count
                                                : HotOwners::kInline;
    for (unsigned i = 0; i < n; ++i) {
        if (hot.own[i] == tid)
            return true;
    }
    if (hot.count > HotOwners::kInline) {
        auto it = _spill.find(vline);
        for (ThreadId t : it->second) {
            if (t == tid)
                return true;
        }
    }
    return false;
}

void
Tracer::ownersAdd(HotOwners &hot, uint64_t vline, ThreadId tid)
{
    if (hot.count < HotOwners::kInline)
        hot.own[hot.count] = tid;
    else
        _spill[vline].push_back(tid);
    ++hot.count;
}

const Tracer::HotOwners *
Tracer::ownersAt(uint64_t vline) const
{
    if (vline < _ownerBase || vline - _ownerBase >= _owners.size())
        return nullptr;
    return &_owners[vline - _ownerBase];
}

Tracer::HotOwners &
Tracer::ownersGrow(uint64_t vline)
{
    if (_owners.empty()) {
        _ownerBase = vline;
        _owners.emplace_back();
        return _owners.front();
    }
    if (vline < _ownerBase) {
        // Registration below the current base: shift the table up.
        // Registration is setup-time work, so the O(n) move is fine
        // (and the records are 16-byte PODs, so it is a memmove). The
        // spill map is keyed by absolute vline and needs no rekeying.
        size_t grow = static_cast<size_t>(_ownerBase - vline);
        std::vector<HotOwners> shifted(grow + _owners.size());
        std::move(_owners.begin(), _owners.end(),
                  shifted.begin() + grow);
        _owners = std::move(shifted);
        _ownerBase = vline;
    } else if (vline - _ownerBase >= _owners.size()) {
        _owners.resize(static_cast<size_t>(vline - _ownerBase) + 1);
    }
    return _owners[vline - _ownerBase];
}

uint64_t &
Tracer::counter(ThreadId tid, CpuId cpu)
{
    std::vector<uint64_t> &counts = _footprints[cpu].counts;
    if (tid >= counts.size())
        counts.resize(static_cast<size_t>(tid) + 1, 0);
    return counts[tid];
}

void
Tracer::onL2Fill(CpuId cpu, PAddr line_addr)
{
    ScopedPhase trace_phase(HostPhase::Trace);
    uint64_t vline;
    if (!vlineOf(line_addr, vline))
        return;
    const HotOwners *owners = ownersAt(vline);
    if (!owners || owners->count == 0)
        return;
    std::vector<uint64_t> &counts = _footprints[cpu].counts;
    ownersForEach(*owners, vline, [&](ThreadId tid) {
        if (tid >= counts.size())
            counts.resize(static_cast<size_t>(tid) + 1, 0);
        ++counts[tid];
    });
}

void
Tracer::onL2Evict(CpuId cpu, PAddr line_addr)
{
    ScopedPhase trace_phase(HostPhase::Trace);
    uint64_t vline;
    if (!vlineOf(line_addr, vline))
        return;
    const HotOwners *owners = ownersAt(vline);
    if (!owners || owners->count == 0)
        return;
    std::vector<uint64_t> &counts = _footprints[cpu].counts;
    ownersForEach(*owners, vline, [&](ThreadId tid) {
        if (tid >= counts.size())
            counts.resize(static_cast<size_t>(tid) + 1, 0);
        uint64_t &lines = counts[tid];
        atl_assert(lines > 0, "footprint underflow for thread ", tid,
                   " on cpu ", cpu);
        --lines;
    });
}

void
Tracer::onL2Replace(CpuId cpu, PAddr fill_addr, PAddr victim_addr)
{
    ScopedPhase trace_phase(HostPhase::Trace);
    // The steady-state miss event: one virtual call covers the evict
    // and the fill, sharing the processor's counter shard across both
    // halves. Bookkeeping order matches the split events (victim debit
    // first), so footprint values are identical either way.
    std::vector<uint64_t> &counts = _footprints[cpu].counts;
    uint64_t vline;
    if (vlineOf(victim_addr, vline)) {
        const HotOwners *owners = ownersAt(vline);
        if (owners && owners->count != 0) {
            ownersForEach(*owners, vline, [&](ThreadId tid) {
                if (tid >= counts.size())
                    counts.resize(static_cast<size_t>(tid) + 1, 0);
                uint64_t &lines = counts[tid];
                atl_assert(lines > 0, "footprint underflow for thread ",
                           tid, " on cpu ", cpu);
                --lines;
            });
        }
    }
    if (vlineOf(fill_addr, vline)) {
        const HotOwners *owners = ownersAt(vline);
        if (owners && owners->count != 0) {
            ownersForEach(*owners, vline, [&](ThreadId tid) {
                if (tid >= counts.size())
                    counts.resize(static_cast<size_t>(tid) + 1, 0);
                ++counts[tid];
            });
        }
    }
}

void
Tracer::onEMiss(CpuId cpu, ThreadId tid)
{
    if (_missCallback)
        _missCallback(cpu, tid);
}

uint64_t
Tracer::footprint(ThreadId tid, CpuId cpu) const
{
    atl_assert(cpu < _numCpus, "cpu id out of range");
    const std::vector<uint64_t> &counts = _footprints[cpu].counts;
    return tid < counts.size() ? counts[tid] : 0;
}

namespace
{

using Interval = std::pair<uint64_t, uint64_t>;

/** Sort and coalesce possibly-overlapping closed intervals. */
std::vector<Interval>
mergeIntervals(std::vector<Interval> intervals)
{
    std::sort(intervals.begin(), intervals.end());
    std::vector<Interval> merged;
    for (const Interval &iv : intervals) {
        if (!merged.empty() && iv.first <= merged.back().second + 1)
            merged.back().second = std::max(merged.back().second,
                                            iv.second);
        else
            merged.push_back(iv);
    }
    return merged;
}

/** Total number of points covered by disjoint closed intervals. */
uint64_t
coveredLines(const std::vector<Interval> &merged)
{
    uint64_t lines = 0;
    for (const Interval &iv : merged)
        lines += iv.second - iv.first + 1;
    return lines;
}

} // namespace

uint64_t
Tracer::stateLines(ThreadId tid) const
{
    auto it = _regions.find(tid);
    if (it == _regions.end())
        return 0;
    return coveredLines(mergeIntervals(it->second));
}

double
Tracer::overlap(ThreadId a, ThreadId b) const
{
    auto ia = _regions.find(a);
    auto ib = _regions.find(b);
    if (ia == _regions.end() || ib == _regions.end())
        return 0.0;

    std::vector<Interval> va = mergeIntervals(ia->second);
    std::vector<Interval> vb = mergeIntervals(ib->second);
    uint64_t total = coveredLines(va);
    if (total == 0)
        return 0.0;

    // Two-pointer intersection over the disjoint sorted lists.
    uint64_t shared = 0;
    size_t i = 0, j = 0;
    while (i < va.size() && j < vb.size()) {
        uint64_t lo = std::max(va[i].first, vb[j].first);
        uint64_t hi = std::min(va[i].second, vb[j].second);
        if (lo <= hi)
            shared += hi - lo + 1;
        if (va[i].second < vb[j].second)
            ++i;
        else
            ++j;
    }
    return static_cast<double>(shared) / static_cast<double>(total);
}

size_t
Tracer::inferAnnotations(double min_q)
{
    size_t arcs = 0;
    for (const auto &[a, regions_a] : _regions) {
        (void)regions_a;
        for (const auto &[b, regions_b] : _regions) {
            (void)regions_b;
            if (a == b)
                continue;
            double q = overlap(a, b);
            if (q >= min_q) {
                _machine.graph().share(a, b, q);
                ++arcs;
            }
        }
    }
    return arcs;
}

} // namespace atl
