/**
 * @file
 * Distributed sweep fabric: a coordinator that shards a sweep's cells
 * across N forked worker processes, each running the existing
 * supervised/journalled runCollect machinery over leased cells. The
 * fabric generalises the crash isolation of sim/supervisor.hh from
 * "one cell can die" to "a whole worker process can die":
 *
 *   - **Leases.** The coordinator hands each idle worker a lease (a
 *     slice of cell indices) over a per-worker command pipe; the worker
 *     reports progress (heartbeats, cell_start / cell / cell_fail
 *     lines) over its event pipe; a lease retires cell-by-cell as the
 *     reports arrive. One JSON object per line; a per-process mutex
 *     serialises the lease loop's and the heartbeat thread's writes,
 *     so lines never interleave even when a cell report grows past
 *     PIPE_BUF (it carries full RunMetrics, and a registry snapshot
 *     when the job has one).
 *
 *   - **Liveness.** The coordinator polls every event pipe and ticks a
 *     waitpid(WNOHANG) death watch. A worker that dies (crash, chaos
 *     kill, OOM) is reaped, its unfinished cells are requeued, and a
 *     fresh worker generation is respawned in its slot while work
 *     remains. A worker whose heartbeats stop for
 *     livenessTimeoutSeconds is SIGKILLed first (wedged, not dead).
 *
 *   - **Work stealing.** An idle worker with an empty queue steals the
 *     in-flight cells of the slowest lease (oldest lease start), so a
 *     straggling worker cannot stall the sweep's tail. A stolen cell
 *     may complete on both workers; the first terminal report wins and
 *     the duplicate is discarded.
 *
 *   - **Exactly-once accounting.** Each worker appends completed cells
 *     to its own fsync'd SweepJournal shard
 *     ("<results>/<bench>.fabric.w<slot>.journal.jsonl", global cell
 *     indices, "ts" attempt stamps). On start the coordinator replays
 *     and merges every shard, resolving duplicate completions of a
 *     cell by the earliest attempt timestamp, and garbage-collects
 *     shards whose header no longer matches the sweep's config hash.
 *     A clean run removes all shards; an interrupted or killed run
 *     leaves them for exact resume.
 *
 * Invariant (the fabric's acceptance bar): the outcome is bit-identical
 * to a serial SweepRunner(1).runCollect of the same sweep — for every
 * cell the same RunMetrics (under RunMetrics::operator==, which
 * excludes host-side timing) — regardless of worker count, worker
 * crashes, steals, or resume. Seeded jobs keep their serial seeds via
 * SweepOptions::seedIndexOffset.
 *
 * Fork safety: worker forks hold forkSerializeMutex() (see
 * sim/supervisor.hh) so no worker inherits a concurrent supervised
 * attempt's pipe write end, and each worker closes every sibling's
 * pipe fds before running. Workers fork from whatever thread calls
 * runFabric — the same glibc fork-from-threads assumptions as the
 * supervisor apply (docs/INTERNALS.md "Distributed sweep fabric").
 */

#ifndef ATL_SIM_FABRIC_HH
#define ATL_SIM_FABRIC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "atl/fault/fault.hh"
#include "atl/sim/journal.hh"
#include "atl/sim/sweep.hh"

namespace atl
{

class EventLog;

/** Knobs for one fabric run. */
struct FabricOptions
{
    /** Worker processes to fork (>= 1; clamped to the cell count). */
    unsigned workers = 2;
    /** Per-cell execution knobs applied *inside* each worker (isolate,
     *  attempts, timeout, backoff, retrySeedBase). The journal,
     *  telemetry, metrics, selfKillAfter and seedIndexOffset fields
     *  are ignored: shards replace the journal, telemetry and host
     *  metrics are coordinator-side, and the fabric sets the seed
     *  offset itself. */
    SweepOptions cell;
    /** Report/journal identity: shards are named
     *  "<bench>.fabric.w<slot>.journal.jsonl" under resultsDir. */
    std::string benchName = "fabric";
    /** Folded into the shard config hash exactly like
     *  SweepOptions::configFingerprint. */
    std::string configFingerprint;
    /** Override for the shard directory; empty uses
     *  BenchReport::resultsDir(). */
    std::string shardDir;
    /** Worker heartbeat period, seconds. */
    double heartbeatSeconds = 0.05;
    /** Reclaim a worker whose heartbeats stop for this long (wedged
     *  but not dead): SIGKILL + requeue, like any other death.
     *  0 disables; process death is still detected immediately. */
    double livenessTimeoutSeconds = 0.0;
    /** Cells per lease. 1 (the default) gives per-cell durability,
     *  stealing and liveness granularity; larger leases amortise
     *  coordinator round-trips for very cheap cells. */
    size_t leaseCells = 1;
    /** Worker generations the coordinator may respawn across the whole
     *  run before giving up on lost cells. */
    unsigned maxRespawns = 64;
    /** A cell whose claimant worker died this many times is marked
     *  failed (poison cell) instead of re-leased forever. */
    unsigned cellDeathLimit = 3;
    /** Chaos: FaultPlan::workerCrashProb makes workers self-SIGKILL
     *  around cell boundaries (seeded; see the plan field). Other plan
     *  fields are ignored here — apply them to the jobs themselves via
     *  injectJobFaults. */
    FaultPlan faults;
    /** Seed for the worker-crash rolls. */
    uint64_t faultSeed = 1;
    /** Chaos: once this many cells have completed, SIGKILL one live
     *  worker (the lowest slot), once. Deterministic counterpart to
     *  workerCrashProb for CI ("kill a worker at cell N"). 0 disables. */
    unsigned killWorkerAfterCells = 0;
    /** Chaos: the *coordinator* raises SIGKILL against the whole
     *  process after this many cells are accounted, simulating a hard
     *  mid-fabric crash; the fsync'd shards are what survives for
     *  resume. 0 disables. */
    unsigned coordinatorKillAfterCells = 0;
    /** Coordinator-side telemetry (owned by the caller): WorkerDeath /
     *  CellStolen events, plus SweepResume per merged shard cell. */
    EventLog *telemetry = nullptr;
    /** Merged metrics registry (owned by the caller). Workers stream
     *  each completed cell's per-job registry snapshot over the event
     *  pipe ("registry" key of the cell message, also journalled in
     *  the shard's done-record); the coordinator folds every snapshot
     *  in with mergeJson — arrival order is irrelevant because the
     *  merge is commutative and associative, so for simulation-derived
     *  metrics the result is bit-identical to folding the per-job
     *  registries of a serial sweep together in index order. */
    MetricsRegistry *metrics = nullptr;
    /** Live status line on stderr (cells done/stolen/failed, p50/p95
     *  cell latency, ETA): 1 on (newline per update, grep-friendly),
     *  0 off, -1 auto — on when ATL_FABRIC_STATUS=1, or when stderr is
     *  a TTY (carriage-return updates in place). */
    int liveStatus = -1;
};

/** One dead worker process, as the coordinator accounted it. */
struct FabricWorkerFailure
{
    /** Worker slot (stable across respawns). */
    unsigned slot = 0;
    /** Pid of the dead generation. */
    int pid = 0;
    /** Terminating signal (0 when it exited). */
    int exitSignal = 0;
    /** Exit status (0 when killed by a signal). */
    int exitCode = 0;
    /** Cells that were in flight on the worker when it died and had to
     *  be requeued or were already covered by a thief. */
    std::vector<size_t> cellsLost;
};

/** Everything a fabric run produced. */
struct FabricOutcome
{
    /** Merged per-cell outcome, bit-identical to a serial runCollect
     *  (resumed[i] set for cells replayed from journal shards). */
    SweepOutcome sweep;
    /** Worker processes actually forked (first generations). */
    unsigned workers = 0;
    /** Steal re-leases issued (cells handed to a second worker while
     *  still in flight on the first). */
    uint64_t stolenRuns = 0;
    /** Worker deaths, in the order the coordinator reaped them. */
    std::vector<FabricWorkerFailure> workerFailures;
    /** Cells recovered from journal shards instead of executed. */
    size_t mergedFromShards = 0;
};

/**
 * Run a sweep on the fabric. Blocks until every cell is terminal
 * (done or failed), the run is interrupted (SIGINT/SIGTERM — shards
 * survive for resume), or all respawn budget is exhausted.
 */
FabricOutcome runFabric(const std::vector<SweepJob> &sweep,
                        const FabricOptions &options);

/**
 * Replay and merge every journal shard of a fabric sweep
 * ("<dir>/<bench>.fabric.w*.journal.jsonl"): cells come back deduped —
 * when two shards completed the same cell (a stolen cell finishing
 * twice), the record with the earliest attempt timestamp wins, ties
 * broken by lower worker slot. Shards whose begin header does not
 * match (bench, config_hash, job_count) are unlinked (superseded-
 * journal GC), matching SweepJournal::beginSweep's discard semantics.
 * Torn shard tails are tolerated per SweepJournal::replay.
 *
 * A shard that exists but cannot be *opened* (EACCES, EIO, ...) is a
 * different story from a stale one: completed cells are about to be
 * silently lost and re-run. That raises a SweepFailure carrying one
 * SweepJobFailure whose message holds the shard path and the OS error,
 * so the operator sees *which* file and *why* instead of a quietly
 * slower resume.
 * @return cell index -> winning replayed cell
 */
std::map<size_t, ReplayedCell>
mergeFabricShards(const std::string &dir, const std::string &bench_name,
                  uint64_t config_hash, size_t job_count);

/** Path of one worker's journal shard. */
std::string fabricShardPath(const std::string &dir,
                            const std::string &bench_name, unsigned slot);

/** Fold a fabric outcome into a report: noteOutcome(sweep) — which
 *  carries the schema-8 checkpoint accounting — plus the fabric keys
 *  (schema 6) — "workers", "stolen_runs" and "worker_failures"
 *  [{slot, pid, exit_signal, exit_code, cells_lost}]. */
void noteFabricReport(BenchReport &report, const FabricOutcome &outcome);

/**
 * Overlay fabric environment knobs onto base options, mirroring
 * sweepOptionsFromEnv:
 *   ATL_FABRIC_WORKERS=<n>          worker count
 *   ATL_FABRIC_CHAOS=1              apply FaultPlan::workerChaos()
 *   ATL_FABRIC_KILL_AFTER=<n>       SIGKILL one worker after n cells
 *   ATL_FABRIC_COORD_KILL_AFTER=<n> coordinator self-SIGKILL after n
 * The per-cell knobs (isolate, timeout, ...) still come from
 * sweepOptionsFromEnv applied to FabricOptions::cell by the caller.
 */
FabricOptions fabricOptionsFromEnv(FabricOptions base = {});

} // namespace atl

#endif // ATL_SIM_FABRIC_HH
